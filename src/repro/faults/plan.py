"""Deterministic fault plans.

A :class:`FaultPlan` is a picklable, seeded schedule of fault events
keyed by *per-device op count* and (optionally) simulated time.  Two
families of hazards are modelled, matching how the underlying media
actually fails:

* **live faults** fire while the system is running: transient read or
  write errors (the device returns an error; a retry usually succeeds)
  and latency spikes (the op completes but stalls the issuing worker).
  These are scheduled per device by operation index, so a plan replays
  identically for a fixed seed regardless of wall-clock timing, and the
  total number of injected faults is deterministic even under
  multi-threaded workloads (indices are allocated atomically; only
  *which* logical op draws a given index varies with interleaving),
* **crash-coupled faults** manifest only at the crash point, because
  that is the only instant they can physically occur: a *torn write*
  persists a prefix of the media-granularity chunks of the final
  in-flight write (the classic partially-persisted WAL tail), and a
  *dropped persist* loses a write that was acknowledged to the caller
  but had not reached durable media when power failed.  The
  :class:`~repro.faults.crash.CrashController` applies these to the WAL
  tail / last page write when it crashes the system.

Plans are plain frozen dataclasses over tuples and ints, so they pickle
cleanly into executor worker processes — the
:func:`~repro.bench.executor.fault_plan_injection` scope carries the
pickled plan to every worker inside each submission's
:class:`~repro.bench.executor.ExecContext`.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field


class FaultKind(enum.Enum):
    """Live fault kinds a device schedule can carry."""

    READ_ERROR = "read_error"
    WRITE_ERROR = "write_error"
    READ_LATENCY_SPIKE = "read_latency_spike"
    WRITE_LATENCY_SPIKE = "write_latency_spike"


class TailFault(enum.Enum):
    """Crash-coupled hazards applied to the durable tail at crash time."""

    NONE = "none"
    #: The final WAL record persisted only a prefix of its media chunks:
    #: it is present but its checksum no longer verifies.
    TORN_WRITE = "torn_write"
    #: The final WAL record was acknowledged but never reached durable
    #: media: it is simply absent after the crash.
    DROPPED_PERSIST = "dropped_persist"
    #: The last durable page write persisted only a prefix of its slots;
    #: the page checksum no longer verifies and recovery must heal it.
    TORN_PAGE = "torn_page"


class DeviceIOError(RuntimeError):
    """A transient device-level I/O failure (retryable)."""

    def __init__(self, tier_key: str, op: str, op_index: int) -> None:
        self.tier_key = tier_key
        self.op = op
        self.op_index = op_index
        super().__init__(
            f"transient {op} error on {tier_key} device (op #{op_index})"
        )

    def __reduce__(self):
        # Exceptions pickle by replaying __init__ with ``args``, which
        # here holds the formatted message — rebuild from the typed
        # fields instead so the error survives process-pool transport.
        return (type(self), (self.tier_key, self.op, self.op_index))


class DeviceGaveUpError(DeviceIOError):
    """Retries exhausted: the typed error surfaced to the caller."""

    def __init__(self, tier_key: str, op: str, op_index: int,
                 attempts: int) -> None:
        self.attempts = attempts
        RuntimeError.__init__(
            self,
            f"{op} on {tier_key} device failed after {attempts} attempts "
            f"(op #{op_index})",
        )
        self.tier_key = tier_key
        self.op = op
        self.op_index = op_index

    def __reduce__(self):
        return (type(self),
                (self.tier_key, self.op, self.op_index, self.attempts))


@dataclass(frozen=True)
class FaultSchedule:
    """Live faults for one device, keyed by per-direction op index.

    ``read_errors`` / ``write_errors`` hold the op indices at which the
    device raises :class:`DeviceIOError`; ``read_spikes`` /
    ``write_spikes`` the indices at which it charges ``spike_ns`` of
    extra (sim-time) stall before completing.  ``active_after_ns`` /
    ``active_until_ns`` optionally gate the whole schedule by the
    device's accumulated sim time, so a plan can target e.g. only the
    post-warm-up window.
    """

    read_errors: frozenset[int] = frozenset()
    write_errors: frozenset[int] = frozenset()
    read_spikes: frozenset[int] = frozenset()
    write_spikes: frozenset[int] = frozenset()
    spike_ns: float = 50_000.0
    active_after_ns: float = 0.0
    active_until_ns: float = float("inf")

    @property
    def is_noop(self) -> bool:
        return not (self.read_errors or self.write_errors
                    or self.read_spikes or self.write_spikes)

    def total_events(self) -> int:
        return (len(self.read_errors) + len(self.write_errors)
                + len(self.read_spikes) + len(self.write_spikes))


@dataclass(frozen=True)
class FaultPlan:
    """A complete, picklable fault schedule for one run.

    ``schedules`` maps a device key (the tier's ``resource_key``, e.g.
    ``"nvm"``/``"ssd"``) to its :class:`FaultSchedule`.  ``wal_tail``
    and ``torn_page_fraction`` configure the crash-coupled hazards the
    :class:`~repro.faults.crash.CrashController` applies.
    """

    schedules: dict[str, FaultSchedule] = field(default_factory=dict)
    wal_tail: TailFault = TailFault.NONE
    #: Fraction of a torn page's slots (by ascending slot order — the
    #: media-prefix model) that survive the torn write.
    torn_page_fraction: float = 0.5
    seed: int | None = None

    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """A schedule that injects nothing (determinism gates use this)."""
        return cls()

    @classmethod
    def seeded(
        cls,
        seed: int,
        device_keys: tuple[str, ...] = ("nvm", "ssd"),
        horizon_ops: int = 10_000,
        read_error_rate: float = 0.0,
        write_error_rate: float = 0.0,
        spike_rate: float = 0.0,
        spike_ns: float = 50_000.0,
        wal_tail: TailFault = TailFault.NONE,
        torn_page_fraction: float = 0.5,
    ) -> "FaultPlan":
        """Draw a deterministic schedule from one seed.

        Each (device, direction) stream draws its own op indices from a
        derived RNG, so adding a device to the plan never perturbs the
        schedule of another device.
        """
        schedules: dict[str, FaultSchedule] = {}
        for key in device_keys:
            streams: list[frozenset[int]] = []
            for stream, rate in (
                ("read_errors", read_error_rate),
                ("write_errors", write_error_rate),
                ("read_spikes", spike_rate),
                ("write_spikes", spike_rate),
            ):
                rng = random.Random(f"{seed}:{key}:{stream}")
                indices = frozenset(
                    index for index in range(horizon_ops)
                    if rate > 0.0 and rng.random() < rate
                )
                streams.append(indices)
            schedule = FaultSchedule(
                read_errors=streams[0],
                write_errors=streams[1],
                read_spikes=streams[2],
                write_spikes=streams[3],
                spike_ns=spike_ns,
            )
            if not schedule.is_noop:
                schedules[key] = schedule
        return cls(
            schedules=schedules,
            wal_tail=wal_tail,
            torn_page_fraction=torn_page_fraction,
            seed=seed,
        )

    # ------------------------------------------------------------------
    @property
    def is_noop(self) -> bool:
        """True when the plan injects nothing, live or crash-coupled."""
        return (
            self.wal_tail is TailFault.NONE
            and all(s.is_noop for s in self.schedules.values())
        )

    def for_device(self, key: str) -> FaultSchedule | None:
        return self.schedules.get(key)

    def total_events(self) -> int:
        return sum(s.total_events() for s in self.schedules.values())

    def describe(self) -> str:
        if self.is_noop:
            return "FaultPlan(noop)"
        parts = [
            f"{key}:{schedule.total_events()}"
            for key, schedule in sorted(self.schedules.items())
        ]
        return (
            f"FaultPlan(seed={self.seed}, events=[{', '.join(parts)}], "
            f"wal_tail={self.wal_tail.value})"
        )
