"""The single crash semantics: :class:`CrashController`.

Before this module, three ad-hoc hooks each dropped a slice of volatile
state: ``BufferManager.simulate_crash`` (volatile pools + mapping
table), ``LogManager.simulate_crash`` (the DRAM group-commit batch),
and ``StorageEngine.simulate_crash`` (MVTO store + per-txn undo
chains).  The controller sequences all of them — plus the
crash-coupled hazards of a :class:`~repro.faults.plan.FaultPlan`
(torn WAL tail, dropped persist, torn page) — so engine tests and the
crash-point matrix share one crash, byte for byte.

:class:`SimulatedCrash` deliberately subclasses ``BaseException``: the
engine's ``execute`` retry loop catches ``Exception`` and rolls the
transaction back with CLRs, which is precisely what must *not* happen
when power fails mid-operation.  A ``BaseException`` unwinds through
the engine (releasing latches and cost batches via ``finally`` blocks)
without writing a single abort record.
"""

from __future__ import annotations

from dataclasses import dataclass

from .plan import TailFault

__all__ = ["CrashController", "CrashReport", "SimulatedCrash"]


class SimulatedCrash(BaseException):
    """Raised by a crash trigger to halt the workload at a boundary.

    ``BaseException`` (not ``Exception``) so transactional retry/abort
    machinery cannot intercept it: a crash leaves in-flight work exactly
    where it stood.
    """

    def __init__(self, boundary=None) -> None:
        self.boundary = boundary
        super().__init__(f"simulated crash at {boundary!r}")


@dataclass
class CrashReport:
    """What one controlled crash did."""

    #: Volatile (group-commit batch) records lost with the crash.
    lost_volatile_records: int = 0
    #: Crash-coupled hazard applied to the WAL tail, if any.
    tail_fault: TailFault = TailFault.NONE
    #: LSN of the WAL record the tail fault hit (-1 when none).
    tail_lsn: int = -1
    #: Page whose last durable write was torn (-1 when none).
    torn_page_id: int = -1
    #: Highest LSN still durable *and valid* after the crash.
    durable_lsn: int = 0


class CrashController:
    """Unified crash semantics over a buffer manager, WAL, and engine.

    Parameters
    ----------
    bm:
        The buffer manager whose volatile state the crash drops.
    log:
        Optional :class:`~repro.wal.log_manager.LogManager`; crash-coupled
        WAL-tail faults and the volatile group batch live here.
    engine:
        Optional :class:`~repro.engine.engine.StorageEngine`; when given,
        its volatile runtime (MVTO store, undo chains) is reset too.
    handle:
        Optional :class:`~repro.faults.injector.InjectionHandle`; when
        given, torn-write *detections* (checksum failures found by the
        recovery scan) are counted into its metrics registry, and the
        plan's ``wal_tail`` / ``torn_page_fraction`` become the default
        crash-coupled hazards.
    """

    def __init__(self, bm, log=None, engine=None, handle=None) -> None:
        self.bm = bm
        self.log = log
        self.engine = engine
        self.handle = handle
        if handle is not None:
            # Checksum-detected torn records/pages found during the
            # recovery scan are counted into the injection metrics, and
            # page-write tracking switches on so TORN_PAGE can act.
            if log is not None:
                log.on_torn = handle.note_torn_detected
            store = getattr(bm, "store", None)
            if store is not None:
                store.on_torn = handle.note_torn_detected
                store.enable_checksums()

    def track_page_writes(self) -> None:
        """Enable SSD page-write checksums/shadows (needed by TORN_PAGE).

        Implied when an injection handle is attached; call explicitly
        before running the workload when crashing with
        ``TailFault.TORN_PAGE`` and no handle.
        """
        self.bm.store.enable_checksums()

    @classmethod
    def for_engine(cls, engine, handle=None) -> "CrashController":
        return cls(engine.bm, engine.log, engine=engine, handle=handle)

    # ------------------------------------------------------------------
    def crash(self, tail_fault: TailFault | None = None,
              torn_page_fraction: float | None = None) -> CrashReport:
        """Crash now: apply crash-coupled hazards, drop volatile state.

        Sequence (each step is what the media would actually do):

        1. the in-flight durable tail takes the plan's hazard — a torn
           WAL record (persisted with an invalid checksum), a dropped
           persist (the record never reached media), or a torn page
           write (a prefix of the last written page's slots survive),
        2. volatile buffer pools and the DRAM mapping table vanish,
        3. the volatile group-commit batch vanishes,
        4. engine-level volatile runtime (MVTO versions, undo chains)
           vanishes.
        """
        plan = self.handle.plan if self.handle is not None else None
        if tail_fault is None:
            tail_fault = plan.wal_tail if plan is not None else TailFault.NONE
        if torn_page_fraction is None:
            torn_page_fraction = (
                plan.torn_page_fraction if plan is not None else 0.5
            )
        report = CrashReport(tail_fault=tail_fault)
        if self.log is not None:
            if tail_fault is TailFault.TORN_WRITE:
                torn = self.log.corrupt_tail()
                report.tail_lsn = torn.lsn if torn is not None else -1
            elif tail_fault is TailFault.DROPPED_PERSIST:
                dropped = self.log.drop_tail()
                report.tail_lsn = dropped.lsn if dropped is not None else -1
        if tail_fault is TailFault.TORN_PAGE:
            report.torn_page_id = self.bm.store.tear_last_write(
                torn_page_fraction
            )
        self.bm.simulate_crash()
        if self.log is not None:
            report.lost_volatile_records = self.log.simulate_crash()
        if self.engine is not None:
            self.engine.drop_volatile_runtime()
        if self.log is not None:
            report.durable_lsn = self.log.verified_durable_lsn()
        return report
