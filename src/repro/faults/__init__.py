"""Fault injection and crash consistency (`repro.faults`).

The subsystem injects deterministic, seeded device faults beneath the
whole stack and proves the system survives them:

* :mod:`repro.faults.plan` — picklable :class:`FaultPlan` schedules of
  transient I/O errors, latency spikes, and crash-coupled torn-write /
  dropped-persist WAL-tail hazards, keyed by per-device op count and
  sim time,
* :mod:`repro.faults.injector` — the :class:`FaultyDevice` decorator
  conforming to the :class:`~repro.hardware.device.Device` API, plus
  :func:`inject_faults` to install it under a hierarchy, with counters
  exported through the ``obs`` metrics registry,
* :mod:`repro.faults.crash` — :class:`CrashController`, the single
  crash semantics shared by engine tests and the crash-point matrix,
  and :class:`SimulatedCrash` (a ``BaseException`` so an in-flight
  transaction is *not* rolled back on the way out — a crash, not an
  abort),
* :mod:`repro.faults.invariants` — post-recovery ACID checks usable
  from tests and the CLI,
* :mod:`repro.faults.crashpoints` — the exhaustive crash-point
  enumerator and replay matrix (imported lazily: it pulls in the
  engine and workload layers).

``crashpoints`` is deliberately not imported here so that the light
pieces (``plan``, ``crash``) can be imported from the core I/O path
without dragging the engine stack along.
"""

from .crash import CrashController, CrashReport, SimulatedCrash
from .plan import (
    DeviceGaveUpError,
    DeviceIOError,
    FaultKind,
    FaultPlan,
    FaultSchedule,
    TailFault,
)

__all__ = [
    "CrashController",
    "CrashReport",
    "DeviceGaveUpError",
    "DeviceIOError",
    "FaultKind",
    "FaultPlan",
    "FaultSchedule",
    "SimulatedCrash",
    "TailFault",
]
