"""The :class:`FaultyDevice` decorator and hierarchy installation.

A :class:`FaultyDevice` wraps a :class:`~repro.hardware.device.Device`
and conforms to its API (``read``/``write``/``persist_barrier``/counter
accessors), so the tier chain, the SSD store, and the WAL all operate
on it unchanged.  On each access it consults its
:class:`~repro.faults.plan.FaultSchedule`:

* a scheduled transient error raises
  :class:`~repro.faults.plan.DeviceIOError` *before* any cost is
  charged (the op never reached the media); the retry layer in
  :mod:`repro.core.devio` absorbs it,
* a scheduled latency spike charges the spike as worker (CPU) stall
  through the shared cost accumulator — sim-time-charged, exactly like
  a device access latency — then completes the op normally.

Fault and retry counters land in an ``obs``
:class:`~repro.obs.metrics.MetricsRegistry`
(``faults_injected_total{tier,kind}``, ``device_retries_total{tier}``,
``torn_writes_detected_total``), so the chaos CLI and the Prometheus
exporter see them with no extra plumbing.

:func:`inject_faults` installs wrappers into a
:class:`~repro.hardware.cost_model.StorageHierarchy` **before** the
buffer manager / engine is built (components capture device references
at construction).  With a no-op plan the wrapper is pure delegation —
the golden-figure gate proves figure JSON stays byte-identical with it
installed.
"""

from __future__ import annotations

import threading

from ..hardware.device import Device
from ..hardware.simclock import CostAccumulator
from ..obs.metrics import MetricsRegistry
from .plan import DeviceIOError, FaultPlan, FaultSchedule

__all__ = ["FaultyDevice", "InjectionHandle", "inject_faults"]


class FaultyDevice:
    """A fault-injecting decorator over one simulated device."""

    def __init__(self, delegate: Device,
                 schedule: FaultSchedule | None = None,
                 registry: MetricsRegistry | None = None) -> None:
        self.delegate = delegate
        self.schedule = schedule
        registry = registry if registry is not None else MetricsRegistry()
        self.registry = registry
        key = delegate.resource_key
        self._key = key
        self._lock = threading.Lock()
        self._read_index = 0
        self._write_index = 0
        self._read_error_counter = registry.counter(
            "faults_injected_total", {"tier": key, "kind": "read_error"})
        self._write_error_counter = registry.counter(
            "faults_injected_total", {"tier": key, "kind": "write_error"})
        self._spike_counter = registry.counter(
            "faults_injected_total", {"tier": key, "kind": "latency_spike"})
        self._retry_counter = registry.counter(
            "device_retries_total", {"tier": key})

    # ------------------------------------------------------------------
    # Device API surface (delegated)
    # ------------------------------------------------------------------
    @property
    def spec(self):
        return self.delegate.spec

    @property
    def capacity_bytes(self):
        return self.delegate.capacity_bytes

    @property
    def cost(self) -> CostAccumulator:
        return self.delegate.cost

    @property
    def counters(self):
        return self.delegate.counters

    @property
    def tier(self):
        return self.delegate.tier

    @property
    def resource_key(self) -> str:
        return self.delegate.resource_key

    def capacity_pages(self, page_size: int):
        return self.delegate.capacity_pages(page_size)

    def persist_barrier(self) -> float:
        return self.delegate.persist_barrier()

    def snapshot_counters(self):
        return self.delegate.snapshot_counters()

    def reset_counters(self) -> None:
        self.delegate.reset_counters()

    def write_volume_gb(self) -> float:
        return self.delegate.write_volume_gb()

    def endurance_consumed(self) -> float:
        return self.delegate.endurance_consumed()

    # ------------------------------------------------------------------
    # Faulting access paths
    # ------------------------------------------------------------------
    def _active(self, schedule: FaultSchedule) -> bool:
        now = self.delegate.cost.total_ns
        return schedule.active_after_ns <= now < schedule.active_until_ns

    def read(self, nbytes: int, sequential: bool = False) -> float:
        schedule = self.schedule
        if schedule is not None:
            with self._lock:
                index = self._read_index
                self._read_index += 1
            if self._active(schedule):
                if index in schedule.read_errors:
                    self._read_error_counter.inc()
                    raise DeviceIOError(self._key, "read", index)
                if index in schedule.read_spikes:
                    self._spike_counter.inc()
                    self.delegate.cost.charge(
                        CostAccumulator.CPU, schedule.spike_ns)
        return self.delegate.read(nbytes, sequential)

    @property
    def supports_batch_reads(self) -> bool:
        """Whether a batched read preserves this wrapper's semantics.

        With no schedule the wrapper is pure delegation.  With a
        schedule that never faults reads, only the read index must
        advance — :meth:`read_batch` handles that.  Scheduled read
        errors/spikes depend on the exact per-op index and sim time, so
        the batch path must fall back to per-op reads.
        """
        schedule = self.schedule
        return schedule is None or (
            not schedule.read_errors and not schedule.read_spikes
        )

    def read_batch(self, nbytes, count: int | None = None,
                   sequential: bool = False):
        """Batched read: advance the fault index in bulk, then delegate.

        Only valid when :attr:`supports_batch_reads` is true (the batch
        path checks); per-op index accounting then reduces to one bump.
        """
        n = int(count) if count is not None else len(nbytes)
        schedule = self.schedule
        if schedule is not None:
            with self._lock:
                self._read_index += n
        return self.delegate.read_batch(nbytes, count=count,
                                        sequential=sequential)

    def write_batch(self, nbytes, count: int | None = None,
                    sequential: bool = False):
        """Batched write for schedules that never fault writes."""
        schedule = self.schedule
        if schedule is not None:
            if schedule.write_errors or schedule.write_spikes:
                raise RuntimeError(
                    "write_batch is not valid with scheduled write faults"
                )
            n = int(count) if count is not None else len(nbytes)
            with self._lock:
                self._write_index += n
        return self.delegate.write_batch(nbytes, count=count,
                                         sequential=sequential)

    def write(self, nbytes: int, sequential: bool = False) -> float:
        schedule = self.schedule
        if schedule is not None:
            with self._lock:
                index = self._write_index
                self._write_index += 1
            if self._active(schedule):
                if index in schedule.write_errors:
                    self._write_error_counter.inc()
                    raise DeviceIOError(self._key, "write", index)
                if index in schedule.write_spikes:
                    self._spike_counter.inc()
                    self.delegate.cost.charge(
                        CostAccumulator.CPU, schedule.spike_ns)
        return self.delegate.write(nbytes, sequential)

    # ------------------------------------------------------------------
    # Retry protocol (called by repro.core.devio on re-issue)
    # ------------------------------------------------------------------
    def note_retry(self) -> None:
        self._retry_counter.inc()

    @property
    def faults_injected(self) -> int:
        return (self._read_error_counter.value
                + self._write_error_counter.value
                + self._spike_counter.value)

    @property
    def retries(self) -> int:
        return self._retry_counter.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        events = self.schedule.total_events() if self.schedule else 0
        return f"FaultyDevice({self.delegate!r}, scheduled={events})"


class InjectionHandle:
    """Installed injection state: wrappers, metrics, and uninstall."""

    def __init__(self, hierarchy, plan: FaultPlan,
                 registry: MetricsRegistry) -> None:
        self.hierarchy = hierarchy
        self.plan = plan
        self.registry = registry
        self.devices: dict = {}
        self._originals: dict = {}
        self._torn_counter = registry.counter("torn_writes_detected_total")

    def note_torn_detected(self, count: int = 1) -> None:
        """Record checksum-detected torn writes (WAL tail or page)."""
        if count:
            self._torn_counter.inc(count)

    @property
    def torn_writes_detected(self) -> int:
        return self._torn_counter.value

    def faults_injected(self) -> int:
        return sum(d.faults_injected for d in self.devices.values())

    def retries(self) -> int:
        return sum(d.retries for d in self.devices.values())

    def uninstall(self) -> None:
        """Restore the original devices (test teardown convenience)."""
        for tier, device in self._originals.items():
            self.hierarchy.devices[tier] = device
        self._originals.clear()
        self.devices.clear()
        if getattr(self.hierarchy, "fault_handle", None) is self:
            self.hierarchy.fault_handle = None


def inject_faults(hierarchy, plan: FaultPlan,
                  registry: MetricsRegistry | None = None) -> InjectionHandle:
    """Wrap every plain device in ``hierarchy`` with a :class:`FaultyDevice`.

    Must run *before* the buffer manager / engine is constructed: core
    components capture device references at build time, so wrapping
    afterwards would leave page traffic on the unwrapped devices.
    Memory-mode devices are left unwrapped (their DRAM-cache-over-NVM
    accounting is a different device model; see docs/FAULTS.md).
    """
    registry = registry if registry is not None else MetricsRegistry()
    handle = InjectionHandle(hierarchy, plan, registry)
    for tier, device in list(hierarchy.devices.items()):
        if not isinstance(device, Device):
            continue
        wrapped = FaultyDevice(device, plan.for_device(device.resource_key),
                               registry)
        handle._originals[tier] = device
        handle.devices[tier] = wrapped
        hierarchy.devices[tier] = wrapped
    # Stashed on the hierarchy so downstream observers (the MetricsHub,
    # the executor) find the active injection without extra plumbing.
    hierarchy.fault_handle = handle
    return handle
