"""Exhaustive crash-point enumeration and replay.

Random crash points (the original ``test_failure_injection`` approach)
sample the failure space; this module *covers* it.  A first run of the
reference workload records every consistency-relevant boundary the
system crosses — each durable WAL append (via the log manager's
``on_append`` observer) and each eviction / migration / write-back /
checkpoint-flush (via the :class:`~repro.core.events.EventBus`).  The
workload is then replayed once per boundary with a
:class:`BoundaryProbe` armed to raise
:class:`~repro.faults.crash.SimulatedCrash` at exactly that point; the
:class:`~repro.faults.crash.CrashController` crashes the system
(optionally applying a crash-coupled WAL-tail or torn-page hazard),
recovery runs, and the full :mod:`~repro.faults.invariants` catalogue
is asserted.

Because workloads, boundary streams, and fault plans are all seeded,
each replay is a picklable :class:`CrashCase` value: the matrix fans
out over the bench executor's process pool and produces byte-identical
JSON for any ``--jobs`` value.

This module deliberately lives outside ``repro.faults.__init__`` — it
imports the engine and workload layers, which the light fault-plan /
crash pieces (imported from ``core.devio``) must not drag in.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from ..core.events import EventType
from ..core.policy import DRAM_SSD_POLICY, SPITFIRE_EAGER, SPITFIRE_LAZY
from ..engine.engine import EngineConfig, StorageEngine
from ..hardware.cost_model import StorageHierarchy
from ..hardware.pricing import HierarchyShape
from ..hardware.specs import SimulationScale
from ..txn.transaction import TransactionAborted
from ..wal.records import LogRecordType
from ..wal.recovery import RecoveryManager
from .crash import CrashController, SimulatedCrash
from .injector import inject_faults
from .invariants import CommittedOp, check_post_recovery
from .plan import FaultPlan, TailFault

__all__ = [
    "Boundary",
    "BoundaryProbe",
    "CrashCase",
    "MatrixConfig",
    "POLICIES",
    "enumerate_boundaries",
    "pending_commit_op",
    "run_crash_case",
    "run_crash_matrix",
]

#: Policies the matrix covers, by picklable name.
POLICIES = {
    "DRAM_SSD": DRAM_SSD_POLICY,
    "SPITFIRE_LAZY": SPITFIRE_LAZY,
    "SPITFIRE_EAGER": SPITFIRE_EAGER,
}

#: A durable WAL append (``LogManager.on_append``).
WAL_APPEND = "wal_append"

#: Bus events that mark consistency-relevant boundaries.
BOUNDARY_EVENTS = {
    EventType.EVICT: "evict",
    EventType.MIGRATE_UP: "migrate_up",
    EventType.MIGRATE_DOWN: "migrate_down",
    EventType.WRITE_BACK: "write_back",
    EventType.FLUSH: "flush",
}


@dataclass(frozen=True)
class Boundary:
    """The ``ordinal``-th occurrence of one boundary kind in a run."""

    kind: str
    ordinal: int

    @property
    def label(self) -> str:
        return f"{self.kind}#{self.ordinal}"


class BoundaryProbe:
    """Counts boundary crossings; optionally crashes at one of them.

    Subscribes to the buffer manager's event bus (implementing the
    ``apply_event`` fast-path protocol, so the bus stays allocation-free)
    and to the log manager's ``on_append`` observer.  When ``armed``,
    reaching the armed boundary raises :class:`SimulatedCrash`, which
    unwinds through the engine without aborting the in-flight
    transaction — power loss, not rollback.
    """

    def __init__(self, armed: Boundary | None = None) -> None:
        self.armed = armed
        self.counts: dict[str, int] = {}
        self._engine = None

    # -- installation ---------------------------------------------------
    def install(self, engine: StorageEngine) -> "BoundaryProbe":
        engine.bm.events.subscribe(self)
        if engine.log is not None:
            engine.log.on_append = self._note_append
        self._engine = engine
        return self

    def uninstall(self) -> None:
        if self._engine is None:
            return
        self._engine.bm.events.unsubscribe(self)
        if self._engine.log is not None:
            self._engine.log.on_append = None
        self._engine = None

    # -- boundary accounting --------------------------------------------
    def _hit(self, kind: str) -> None:
        ordinal = self.counts.get(kind, 0)
        self.counts[kind] = ordinal + 1
        armed = self.armed
        if (armed is not None and armed.kind == kind
                and armed.ordinal == ordinal):
            raise SimulatedCrash(armed)

    def _note_append(self, record) -> None:
        self._hit(WAL_APPEND)

    def __call__(self, event) -> None:
        self.apply_event(event.type, event.page_id, event.tier, event.src,
                         event.dirty)

    def apply_event(self, etype, page_id, tier, src, dirty) -> None:
        kind = BOUNDARY_EVENTS.get(etype)
        if kind is not None:
            self._hit(kind)

    # -- results ---------------------------------------------------------
    def boundaries(self) -> list[Boundary]:
        """Every boundary this run crossed, in a stable order."""
        return [
            Boundary(kind, ordinal)
            for kind in sorted(self.counts)
            for ordinal in range(self.counts[kind])
        ]


# ----------------------------------------------------------------------
# The reference workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MatrixConfig:
    """Shape of one matrix run — small but boundary-rich by default.

    2 KB tuples over 4 DRAM + 4 NVM frames force evictions, migrations
    in both directions, and NVM→SSD write-backs (under every policy and
    matrix seed) well within ``operations`` ops, so the boundary stream
    exercises every kind — and the torn-page hazard always has a real
    store write to tear — not just WAL appends.
    """

    operations: int = 60
    keys: int = 72
    tuple_size: int = 2048
    dram_gb: float = 0.5
    nvm_gb: float = 0.5
    ssd_gb: float = 100.0
    pages_per_gb: int = 8
    checkpoint_interval_ops: int = 25


def build_case_engine(policy_name: str, config: MatrixConfig,
                      plan: FaultPlan | None = None):
    """Build a (possibly fault-injected) engine for one matrix case.

    Returns ``(engine, handle)`` — injection must wrap the hierarchy's
    devices *before* the engine is built, so every component captures
    the wrapped references.
    """
    policy = POLICIES[policy_name]
    nvm_gb = 0.0 if policy_name == "DRAM_SSD" else config.nvm_gb
    hierarchy = StorageHierarchy(
        HierarchyShape(config.dram_gb, nvm_gb, config.ssd_gb),
        SimulationScale(pages_per_gb=config.pages_per_gb),
    )
    handle = None
    if plan is not None and not plan.is_noop:
        handle = inject_faults(hierarchy, plan)
    engine = StorageEngine(
        hierarchy, policy,
        config=EngineConfig(
            checkpoint_interval_ops=config.checkpoint_interval_ops
        ),
    )
    engine.log.group_commit_size = 1  # every commit durable
    engine.create_table("t", tuple_size=config.tuple_size)
    return engine, handle


def run_reference_workload(engine: StorageEngine, seed: int,
                           config: MatrixConfig,
                           ) -> tuple[list[CommittedOp], bool,
                                      tuple[int, int, bytes] | None]:
    """Drive the deterministic reference workload; crash-aware.

    Returns the acknowledged committed operations (each stamped with
    the LSN that made its commit durable), whether a
    :class:`SimulatedCrash` fired, and the ``(txn_id, key, value)`` of
    the op in flight at the crash (``None`` for a clean end, or when
    the crash hit before the op's transaction body ran).  The in-flight
    op is *not* recorded in ``ops`` — whether it counts as committed
    depends on whether its commit record survived in the durable log,
    which :func:`pending_commit_op` decides after recovery.
    """
    rng = random.Random(seed)
    ops: list[CommittedOp] = []
    known: set[int] = set()
    pending_txn = {"id": -1}
    for index in range(config.operations):
        key = rng.randrange(config.keys)
        value = f"[{index}, {rng.random()!r}]".encode()
        pending_txn["id"] = -1

        def body(txn):
            pending_txn["id"] = txn.txn_id
            if key in known:
                engine.update(txn, "t", key, value)
            else:
                engine.insert(txn, "t", key, value)

        try:
            engine.execute(body)
        except TransactionAborted:
            continue
        except SimulatedCrash:
            if pending_txn["id"] < 0:
                return ops, True, None
            return ops, True, (pending_txn["id"], key, value)
        known.add(key)
        ops.append(CommittedOp(engine.log.durable_lsn, key, value))
    return ops, False, None


def pending_commit_op(engine: StorageEngine, winners: set,
                      pending: tuple[int, int, bytes] | None,
                      ) -> CommittedOp | None:
    """Did the in-flight op's transaction durably commit anyway?

    A crash can land *after* the commit record reached durable media
    but *before* the client was acknowledged.  Durability then says the
    transaction IS committed — recovery must (and does) keep it.  The
    expected-state fold has to match: when the pending transaction is a
    recovery winner, its op is returned as a :class:`CommittedOp`.  The
    commit LSN comes from the retained commit record; the update record
    itself may legitimately be gone (a checkpoint that made the page
    durable truncated it).
    """
    if pending is None:
        return None
    txn_id, key, value = pending
    if txn_id not in winners:
        return None
    for record in engine.log.recovered_records():
        if (record.record_type is LogRecordType.COMMIT
                and record.txn_id == txn_id):
            return CommittedOp(record.lsn, key, value)
    return None


def enumerate_boundaries(policy_name: str, seed: int,
                         config: MatrixConfig) -> list[Boundary]:
    """Discover every boundary the reference workload crosses."""
    engine, _ = build_case_engine(policy_name, config)
    probe = BoundaryProbe().install(engine)
    try:
        run_reference_workload(engine, seed, config)
    finally:
        probe.uninstall()
    return probe.boundaries()


# ----------------------------------------------------------------------
# One replayable case
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CrashCase:
    """One picklable matrix cell: crash *here*, with *this* hazard."""

    policy: str
    seed: int
    boundary: Boundary
    tail_fault: str = TailFault.NONE.value
    config: MatrixConfig = field(default_factory=MatrixConfig)
    #: Optional live-fault plan seed; 0 disables live faults.  Live
    #: transient errors are absorbed by the devio retry layer, so the
    #: boundary stream (events + WAL appends) is unchanged by them.
    fault_seed: int = 0
    read_error_rate: float = 0.0
    write_error_rate: float = 0.0

    @property
    def case_id(self) -> str:
        suffix = "" if self.tail_fault == "none" else f"+{self.tail_fault}"
        return (f"{self.policy}/seed{self.seed}/"
                f"{self.boundary.label}{suffix}")

    def live_plan(self) -> FaultPlan | None:
        if not (self.read_error_rate or self.write_error_rate):
            return None
        return FaultPlan.seeded(
            self.fault_seed or self.seed,
            read_error_rate=self.read_error_rate,
            write_error_rate=self.write_error_rate,
        )


def run_crash_case(case: CrashCase) -> dict:
    """Replay one case: crash, recover, check invariants.  Picklable."""
    from ..bench.executor import active_telemetry

    channel = active_telemetry()
    if channel is not None:
        channel.emit("case_start", case=case.case_id)
    engine, handle = build_case_engine(case.policy, case.config,
                                       plan=case.live_plan())
    controller = CrashController.for_engine(engine, handle=handle)
    controller.track_page_writes()
    probe = BoundaryProbe(armed=case.boundary).install(engine)
    try:
        ops, crashed, pending = run_reference_workload(
            engine, case.seed, case.config)
    finally:
        probe.uninstall()
    report = controller.crash(TailFault(case.tail_fault))
    recovery = RecoveryManager(engine.bm, engine.log).recover()
    # A crash can land after the in-flight op's commit record became
    # durable but before the client was acknowledged; the transaction is
    # then committed and recovery keeps it — fold it into the expected
    # state too.
    unacked = pending_commit_op(engine, recovery.winners, pending)
    if unacked is not None:
        ops.append(unacked)
    invariants = check_post_recovery(
        engine, "t", ops, report.durable_lsn,
        all_keys=range(case.config.keys),
    )
    result = {
        "case": case.case_id,
        "policy": case.policy,
        "seed": case.seed,
        "boundary": case.boundary.label,
        "tail_fault": case.tail_fault,
        "crashed_at_boundary": crashed,
        "committed_ops": len(ops),
        "durable_lsn": report.durable_lsn,
        "lost_volatile_records": report.lost_volatile_records,
        "tail_lsn": report.tail_lsn,
        "torn_page_id": report.torn_page_id,
        "torn_records_dropped": engine.log.stats.torn_records_dropped,
        "torn_pages_healed": recovery.torn_pages_healed,
        "recovery": {
            "winners": len(recovery.winners),
            "losers": len(recovery.losers),
            "redo_applied": recovery.redo_applied,
            "undo_applied": recovery.undo_applied,
            "clrs_written": recovery.clrs_written,
        },
        "invariants": invariants.as_dict(),
        "ok": invariants.ok,
    }
    if handle is not None:
        result["faults"] = {
            "injected": handle.faults_injected(),
            "retries": handle.retries(),
            "torn_detected": handle.torn_writes_detected,
        }
    if channel is not None:
        channel.emit("case_end", case=case.case_id, ok=invariants.ok)
    return result


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------
def _case_weight(case: CrashCase) -> float:
    """Expected relative cost of one case, for the executor's scheduler.

    A case crashing at the ``k``-th occurrence of its boundary kind
    replays more of the workload the larger ``k`` is (plus recovery
    over a longer WAL), so late-ordinal cases are the stragglers — the
    chunk planner schedules them first.
    """
    return 1.0 + case.boundary.ordinal


def build_cases(policies, seeds, config: MatrixConfig,
                with_tail_faults: bool = True,
                read_error_rate: float = 0.0,
                write_error_rate: float = 0.0) -> list[CrashCase]:
    """Enumerate boundaries per (policy, seed) and expand into cases.

    Every discovered boundary gets a clean-crash case.  With
    ``with_tail_faults``, the WAL tail hazards (torn write / dropped
    persist) are additionally applied at the middle and last WAL-append
    boundaries, and a torn page at the last write-back/flush boundary —
    the points where those hazards are physically possible.
    """
    cases: list[CrashCase] = []
    for policy in policies:
        for seed in seeds:
            boundaries = enumerate_boundaries(policy, seed, config)
            common = dict(policy=policy, seed=seed, config=config,
                          read_error_rate=read_error_rate,
                          write_error_rate=write_error_rate)
            for boundary in boundaries:
                cases.append(CrashCase(boundary=boundary, **common))
            if not with_tail_faults:
                continue
            wal = [b for b in boundaries if b.kind == WAL_APPEND]
            targets = []
            if wal:
                targets = [wal[len(wal) // 2]]
                if wal[-1] != targets[0]:
                    targets.append(wal[-1])
            for target in targets:
                for fault in (TailFault.TORN_WRITE,
                              TailFault.DROPPED_PERSIST):
                    cases.append(CrashCase(boundary=target,
                                           tail_fault=fault.value,
                                           **common))
            writes = [b for b in boundaries
                      if b.kind in ("write_back", "flush")]
            if writes:
                cases.append(CrashCase(boundary=writes[-1],
                                       tail_fault=TailFault.TORN_PAGE.value,
                                       **common))
    return cases


def run_crash_matrix(policies=("DRAM_SSD", "SPITFIRE_LAZY",
                               "SPITFIRE_EAGER"),
                     seeds=(1, 7, 23),
                     config: MatrixConfig | None = None,
                     jobs: int = 1,
                     with_tail_faults: bool = True,
                     read_error_rate: float = 0.0,
                     write_error_rate: float = 0.0) -> dict:
    """Run the full crash-point matrix; returns a JSON-able report.

    Results arrive in submission order from the executor's generic task
    pool, so the report is byte-identical for any ``jobs`` value.
    """
    from ..bench.executor import run_tasks

    config = config or MatrixConfig()
    cases = build_cases(policies, seeds, config,
                        with_tail_faults=with_tail_faults,
                        read_error_rate=read_error_rate,
                        write_error_rate=write_error_rate)
    results = run_tasks(run_crash_case, cases, jobs=jobs,
                        weigh=_case_weight)
    failures = [r["case"] for r in results if not r["ok"]]
    boundary_kinds: dict[str, int] = {}
    for case in cases:
        boundary_kinds[case.boundary.kind] = (
            boundary_kinds.get(case.boundary.kind, 0) + 1
        )
    return {
        "policies": list(policies),
        "seeds": list(seeds),
        "total_cases": len(cases),
        "boundary_kinds": dict(sorted(boundary_kinds.items())),
        "failures": failures,
        "ok": not failures,
        "cases": results,
    }


def render_matrix_json(report: dict) -> str:
    """Canonical JSON rendering (sorted keys, stable separators)."""
    return json.dumps(report, indent=2, sort_keys=True)
