"""Post-recovery ACID invariant checks.

Every crash-point replay (and any test) funnels through
:func:`check_post_recovery`, which runs the full catalogue against a
recovered engine:

* **durable-commit completeness** — every transaction whose commit
  record survived the crash (commit LSN ≤ the verified durable LSN) is
  fully present in the durable state,
* **no loser leakage** — no key carries a value from a transaction that
  did not durably commit: the durable state equals *exactly* the fold
  of durably-committed operations, so a stolen-but-unwound write or a
  truncated-tail commit showing through is a violation,
* **mapping-table consistency** — every mapping-table copy is resident
  in its tier's pool (and vice versa), points at the right page, and
  refers to a page that exists in the SSD store,
* **recovery idempotence** — a second recovery pass redoes nothing,
  undoes nothing, and leaves the durable state bit-identical.

Checks accumulate :class:`InvariantViolation` records instead of
raising, so one replay can report every broken invariant at once; the
chaos CLI serialises reports straight into its JSON output, and tests
assert ``report.ok``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = [
    "CommittedOp",
    "InvariantReport",
    "InvariantViolation",
    "check_durable_state",
    "check_mapping_consistency",
    "check_recovery_idempotence",
    "check_post_recovery",
    "expected_durable_state",
]


@dataclass(frozen=True)
class CommittedOp:
    """One committed workload operation and the LSN that made it durable."""

    commit_lsn: int
    key: object
    value: bytes


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant, with enough detail to reproduce."""

    invariant: str
    detail: str

    def as_dict(self) -> dict:
        return {"invariant": self.invariant, "detail": self.detail}


@dataclass
class InvariantReport:
    """The outcome of one invariant sweep."""

    checks_run: list[str] = field(default_factory=list)
    violations: list[InvariantViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, invariant: str, detail: str) -> None:
        self.violations.append(InvariantViolation(invariant, detail))

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "checks_run": list(self.checks_run),
            "violations": [v.as_dict() for v in self.violations],
        }

    def raise_if_failed(self) -> None:
        if not self.ok:
            lines = "\n".join(
                f"  [{v.invariant}] {v.detail}" for v in self.violations
            )
            raise AssertionError(f"invariant violations:\n{lines}")


# ----------------------------------------------------------------------
def expected_durable_state(ops: Iterable[CommittedOp],
                           durable_lsn: int) -> dict:
    """Fold the durably-committed operations into a key → value map.

    An operation counts exactly when its commit record's LSN is within
    the post-crash verified durable prefix of the log — commits lost to
    a torn tail or a dropped persist fall out naturally.
    """
    state: dict = {}
    for op in ops:
        if op.commit_lsn <= durable_lsn:
            state[op.key] = op.value
    return state


def check_durable_state(engine, table_name: str, ops, durable_lsn: int,
                        all_keys: Iterable = (),
                        report: InvariantReport | None = None,
                        ) -> InvariantReport:
    """Durable-commit completeness + no-loser-leakage, in one sweep.

    The recovered durable state must equal *exactly* the fold of
    durably-committed operations over ``expected ∪ all_keys``: a
    missing/stale value breaks completeness, any other value is loser
    leakage (an uncommitted or torn-away write showing through).
    """
    report = report if report is not None else InvariantReport()
    report.checks_run.append("durable_commits_present")
    report.checks_run.append("no_loser_leakage")
    expected = expected_durable_state(ops, durable_lsn)
    keys = set(expected) | set(all_keys)
    for key in sorted(keys, key=repr):
        want = expected.get(key)
        got = engine.committed_value(table_name, key)
        if got == want:
            continue
        if want is None:
            report.add(
                "no_loser_leakage",
                f"key {key!r} has durable value {got!r} but no transaction "
                f"touching it committed within durable LSN {durable_lsn}",
            )
        elif got is None:
            report.add(
                "durable_commits_present",
                f"key {key!r} lost its durably committed value "
                f"(commit ≤ LSN {durable_lsn}): expected {want!r}",
            )
        else:
            report.add(
                "no_loser_leakage",
                f"key {key!r}: durable value {got!r} != last durably "
                f"committed {want!r} (durable LSN {durable_lsn})",
            )
    return report


def check_mapping_consistency(bm, report: InvariantReport | None = None,
                              ) -> InvariantReport:
    """Mapping table vs. tier contents vs. SSD store, both directions."""
    report = report if report is not None else InvariantReport()
    report.checks_run.append("mapping_table_consistent")
    for shared in bm.table:
        for tier in shared.resident_tiers:
            descriptor = shared.copy_on(tier)
            node = bm.chain.get(tier)
            if node is None:
                report.add(
                    "mapping_table_consistent",
                    f"page {shared.page_id} maps a copy on {tier.name}, "
                    f"but the chain has no such tier",
                )
                continue
            pooled = node.pool.get(shared.page_id)
            if pooled is not descriptor:
                report.add(
                    "mapping_table_consistent",
                    f"page {shared.page_id} on {tier.name}: mapping-table "
                    f"descriptor is not the pool-resident one",
                )
            if descriptor.page_id != shared.page_id:
                report.add(
                    "mapping_table_consistent",
                    f"descriptor on {tier.name} claims page "
                    f"{descriptor.page_id}, mapped under {shared.page_id}",
                )
        if not bm.store.exists(shared.page_id):
            report.add(
                "mapping_table_consistent",
                f"page {shared.page_id} is buffered but absent from the "
                f"SSD store",
            )
    for node in bm.chain:
        for page_id in node.pool.resident_page_ids():
            shared = bm.table.get(page_id)
            if shared is None or shared.copy_on(node.tier) is None:
                report.add(
                    "mapping_table_consistent",
                    f"page {page_id} resident on {node.tier.name} has no "
                    f"mapping-table entry for that tier",
                )
    return report


def check_recovery_idempotence(engine, table_name: str, keys: Iterable,
                               report: InvariantReport | None = None,
                               ) -> InvariantReport:
    """A second recovery pass must be a strict no-op."""
    from ..wal.recovery import RecoveryManager

    report = report if report is not None else InvariantReport()
    report.checks_run.append("recovery_idempotent")
    keys = list(keys)
    before = {k: engine.committed_value(table_name, k) for k in keys}
    second = RecoveryManager(engine.bm, engine.log).recover()
    if second.redo_applied:
        report.add(
            "recovery_idempotent",
            f"second recovery pass redid {second.redo_applied} record(s)",
        )
    if second.undo_applied:
        report.add(
            "recovery_idempotent",
            f"second recovery pass undid {second.undo_applied} record(s)",
        )
    after = {k: engine.committed_value(table_name, k) for k in keys}
    if after != before:
        changed = sorted(
            (repr(k) for k in keys if before[k] != after[k])
        )
        report.add(
            "recovery_idempotent",
            f"durable state changed across the second recovery pass for "
            f"key(s) {', '.join(changed)}",
        )
    return report


def check_post_recovery(engine, table_name: str, ops, durable_lsn: int,
                        all_keys: Iterable = ()) -> InvariantReport:
    """Run the full catalogue against a freshly recovered engine."""
    report = InvariantReport()
    ops = list(ops)
    keys = set(o.key for o in ops) | set(all_keys)
    check_durable_state(engine, table_name, ops, durable_lsn,
                        all_keys=keys, report=report)
    check_mapping_consistency(engine.bm, report=report)
    check_recovery_idempotence(engine, table_name, sorted(keys, key=repr),
                               report=report)
    # Idempotence re-ran recovery; durable state must still match.
    check_durable_state(engine, table_name, ops, durable_lsn,
                        all_keys=keys, report=report)
    return report
