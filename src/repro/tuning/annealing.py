"""Simulated-annealing search over migration policies (§4 of the paper).

Spitfire adapts its policy ``P = <D_r, D_w, N_r, N_w>`` at runtime by
minimising ``cost_T(P) = 1/T`` where ``T`` is the throughput observed
while running ``P`` for one tuning epoch.  The search is classic
simulated annealing (Kirkpatrick et al. [21]): a neighbouring policy is
proposed each epoch; improvements are always accepted, regressions are
accepted with probability ``exp(-Δcost/t)``; the temperature ``t`` cools
geometrically.

The paper sets the initial/final temperatures to 800 and 0.00008 and
uses a cooling factor α = 0.9 (§6.4); those are the defaults here.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace

from ..core.policy import MigrationPolicy

#: The discrete probability levels the experiments sweep; annealing moves
#: between adjacent levels, which matches the paper's policy grid.
PROBABILITY_LEVELS = (0.0, 0.01, 0.1, 0.2, 0.5, 1.0)


def throughput_cost(throughput: float) -> float:
    """The paper's cost function ``cost_T(P) = 1/T``."""
    if throughput <= 0:
        return float("inf")
    return 1.0 / throughput


@dataclass
class AnnealingSchedule:
    """Geometric cooling schedule."""

    initial_temperature: float = 800.0
    final_temperature: float = 8e-5
    alpha: float = 0.9

    def __post_init__(self) -> None:
        if not 0 < self.alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        if self.final_temperature <= 0 or self.initial_temperature <= 0:
            raise ValueError("temperatures must be positive")
        if self.final_temperature >= self.initial_temperature:
            raise ValueError("final temperature must be below the initial one")

    def temperature(self, step: int) -> float:
        """Temperature at tuning step ``step`` (clamped at the floor)."""
        return max(self.final_temperature, self.initial_temperature * self.alpha**step)

    @property
    def steps_to_final(self) -> int:
        """Number of steps until the floor temperature is reached."""
        ratio = self.final_temperature / self.initial_temperature
        return math.ceil(math.log(ratio) / math.log(self.alpha))


class PolicyAnnealer:
    """Simulated-annealing state machine over migration policies.

    Drive it epoch by epoch::

        candidate = annealer.propose()
        ...run one epoch under ``candidate``, measure throughput...
        annealer.observe(candidate, throughput)

    :attr:`best_policy` tracks the lowest-cost policy seen so far.
    """

    def __init__(
        self,
        initial_policy: MigrationPolicy,
        schedule: AnnealingSchedule | None = None,
        seed: int = 7,
        levels: tuple[float, ...] = PROBABILITY_LEVELS,
        lockstep: bool = True,
    ) -> None:
        if not levels or sorted(levels) != list(levels):
            raise ValueError("levels must be a sorted non-empty tuple")
        self.schedule = schedule or AnnealingSchedule()
        self.rng = random.Random(seed)
        self.levels = levels
        #: When True, D_r/D_w move together and N_r/N_w move together,
        #: mirroring the paper's lockstep sweeps; when False all four
        #: probabilities are tuned independently.
        self.lockstep = lockstep
        self.step = 0
        self.current_policy = initial_policy
        self.current_cost = float("inf")
        self.best_policy = initial_policy
        self.best_cost = float("inf")
        self.accepted_regressions = 0
        self.rejections = 0
        self.history: list[tuple[MigrationPolicy, float]] = []

    # ------------------------------------------------------------------
    @property
    def temperature(self) -> float:
        return self.schedule.temperature(self.step)

    def _nearest_level(self, value: float) -> int:
        return min(
            range(len(self.levels)), key=lambda i: abs(self.levels[i] - value)
        )

    def _perturb(self, value: float) -> float:
        """Move one step up or down the level grid."""
        index = self._nearest_level(value)
        if index == 0:
            index += 1
        elif index == len(self.levels) - 1:
            index -= 1
        else:
            index += self.rng.choice((-1, 1))
        return self.levels[index]

    def propose(self) -> MigrationPolicy:
        """A neighbouring candidate policy for the next epoch."""
        policy = self.current_policy
        if self.lockstep:
            which = self.rng.choice(("d", "n"))
            if which == "d":
                new_d = self._perturb(policy.d_r)
                return replace(policy, d_r=new_d, d_w=new_d, name="")
            new_n = self._perturb(policy.n_r)
            return replace(policy, n_r=new_n, n_w=new_n, name="")
        field = self.rng.choice(("d_r", "d_w", "n_r", "n_w"))
        return replace(policy, **{field: self._perturb(getattr(policy, field)),
                                  "name": ""})

    def observe(self, candidate: MigrationPolicy, throughput: float) -> bool:
        """Record the epoch's measurement; return True when accepted."""
        cost = throughput_cost(throughput)
        self.history.append((candidate, throughput))
        accepted = self._accept(cost)
        if accepted:
            if cost > self.current_cost:
                self.accepted_regressions += 1
            self.current_policy = candidate
            self.current_cost = cost
        else:
            self.rejections += 1
        if cost < self.best_cost:
            self.best_cost = cost
            self.best_policy = candidate
        self.step += 1
        return accepted

    def _accept(self, cost: float) -> bool:
        if cost <= self.current_cost:
            return True
        if math.isinf(cost):
            return False
        # Costs are tiny (1/throughput); scale the delta into the
        # temperature's range so early steps genuinely explore.
        delta = (cost - self.current_cost) / max(self.current_cost, 1e-30)
        temperature = self.temperature
        # Normalise temperature to [0, 1] of its initial value.
        t_norm = temperature / self.schedule.initial_temperature
        if t_norm <= 0:
            return False
        probability = math.exp(-delta / t_norm)
        return self.rng.random() < probability
