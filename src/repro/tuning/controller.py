"""Epoch-driven adaptive data migration controller (§4, §6.4).

The controller owns the feedback loop around
:class:`~repro.tuning.annealing.PolicyAnnealer`: at the start of each
tuning epoch it installs a candidate policy on the buffer manager; at
the end it measures the epoch's throughput from the cost accumulator
delta and feeds it back to the annealer.

The paper evaluates each candidate across millions of buffer requests
(a 5 s epoch) so that the policy's effect dominates noise; here the
epoch length is expressed in operations and the throughput comes from
simulated time, so shorter epochs remain statistically meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.buffer_manager import BufferManager
from ..core.events import BufferEvent, EventType
from ..core.policy import MigrationPolicy
from .annealing import AnnealingSchedule, PolicyAnnealer


@dataclass
class EpochRecord:
    """Measurement of one tuning epoch."""

    epoch: int
    policy: MigrationPolicy
    operations: int
    throughput: float
    accepted: bool
    temperature: float


class _OpCounter:
    """Bus observer that tallies operations for the controller.

    Implements the bus's ``apply_event`` fast path so an attached
    controller does not force event materialisation on every emission.
    """

    __slots__ = ("_controller",)

    def __init__(self, controller: "AdaptiveController") -> None:
        self._controller = controller

    def __call__(self, event: BufferEvent) -> None:
        self.apply_event(event.type, event.page_id, event.tier, event.src,
                         event.dirty)

    def apply_event(self, etype, page_id, tier, src, dirty) -> None:
        if etype is EventType.OP_READ or etype is EventType.OP_WRITE:
            self._controller._ops_seen += 1


class AdaptiveController:
    """Runs the adapt-measure-decide loop on top of a buffer manager."""

    def __init__(
        self,
        buffer_manager: BufferManager,
        workers: int = 1,
        schedule: AnnealingSchedule | None = None,
        seed: int = 7,
        lockstep: bool = True,
    ) -> None:
        self.bm = buffer_manager
        self.workers = workers
        self.annealer = PolicyAnnealer(
            buffer_manager.policy, schedule=schedule, seed=seed, lockstep=lockstep
        )
        self.records: list[EpochRecord] = []
        self._epoch = 0
        self._candidate: MigrationPolicy | None = None
        self._baseline: dict | None = None
        self._ops_at_start = 0
        # Count operations by subscribing to the buffer manager's event
        # bus rather than polling its stats object, so the measurement
        # survives a mid-epoch ``reset_stats()``.
        self._ops_seen = 0
        self._observer = _OpCounter(self)
        buffer_manager.events.subscribe(self._observer)

    def _observe_event(self, event: BufferEvent) -> None:
        if event.type is EventType.OP_READ or event.type is EventType.OP_WRITE:
            self._ops_seen += 1

    def detach(self) -> None:
        """Stop observing the buffer manager's event bus."""
        self.bm.events.unsubscribe(self._observer)

    # ------------------------------------------------------------------
    def begin_epoch(self) -> MigrationPolicy:
        """Install the next candidate policy and start measuring."""
        if self._candidate is not None:
            raise RuntimeError("previous epoch was not ended")
        if self._epoch == 0:
            # Measure the starting policy first so the annealer has a
            # baseline cost before exploring.
            candidate = self.bm.policy
        else:
            candidate = self.annealer.propose()
        self._candidate = candidate
        self.bm.set_policy(candidate)
        self._baseline = self.bm.hierarchy.cost.snapshot()
        self._ops_at_start = self._ops_seen
        return candidate

    def end_epoch(self) -> EpochRecord:
        """Measure the epoch and feed the result to the annealer."""
        if self._candidate is None or self._baseline is None:
            raise RuntimeError("begin_epoch was not called")
        operations = self._ops_seen - self._ops_at_start
        delta = self.bm.hierarchy.cost.delta_since(self._baseline)
        throughput = delta.throughput(operations, self.workers)
        accepted = self.annealer.observe(self._candidate, throughput)
        record = EpochRecord(
            epoch=self._epoch,
            policy=self._candidate,
            operations=operations,
            throughput=throughput,
            accepted=accepted,
            temperature=self.annealer.temperature,
        )
        self.records.append(record)
        self._epoch += 1
        self._candidate = None
        self._baseline = None
        # Keep running the annealer's current policy between epochs.
        self.bm.set_policy(self.annealer.current_policy)
        return record

    # ------------------------------------------------------------------
    def run(self, workload_step, epochs: int, ops_per_epoch: int) -> list[EpochRecord]:
        """Convenience loop: ``workload_step()`` must perform one operation.

        Returns the per-epoch records (the Fig. 10 series).
        """
        for _ in range(epochs):
            self.begin_epoch()
            for _ in range(ops_per_epoch):
                workload_step()
            self.end_epoch()
        return self.records

    @property
    def best_policy(self) -> MigrationPolicy:
        return self.annealer.best_policy

    def throughput_series(self) -> list[float]:
        """Per-epoch throughput, i.e. the y-axis of Fig. 10."""
        return [record.throughput for record in self.records]
