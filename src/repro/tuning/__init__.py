"""Adaptive data migration: simulated annealing over policies (§4)."""

from .annealing import (
    PROBABILITY_LEVELS,
    AnnealingSchedule,
    PolicyAnnealer,
    throughput_cost,
)
from .controller import AdaptiveController, EpochRecord

__all__ = [
    "AdaptiveController",
    "AnnealingSchedule",
    "EpochRecord",
    "PROBABILITY_LEVELS",
    "PolicyAnnealer",
    "throughput_cost",
]
