"""Concurrent indexing: B+Tree with optimistic lock coupling."""

from .bptree import DEFAULT_FANOUT, BPlusTree
from .olc import OlcRestart, OptimisticLatch

__all__ = ["BPlusTree", "DEFAULT_FANOUT", "OlcRestart", "OptimisticLatch"]
