"""Concurrent B+Tree with optimistic lock coupling (§5.2, [24]).

Lookups descend without taking any locks, validating each node's
version after reading from it; a failed validation raises
:class:`~repro.index.olc.OlcRestart` and the operation retries from the
root.  Inserts attempt the same optimistic descent and upgrade the leaf
latch; when a structural modification (split) is required they fall
back to a pessimistic top-down descent that splits full nodes eagerly,
so a split never has to propagate upward while holding child locks.

Keys must be mutually comparable; values are arbitrary objects (the
storage engine stores record identifiers).
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Iterator

from .olc import OlcRestart, OptimisticLatch

#: Maximum number of keys per node before it splits.
DEFAULT_FANOUT = 64

#: Safety valve: an operation restarting more often than this indicates
#: a livelock bug rather than contention.
MAX_RESTARTS = 10_000


class _Node:
    __slots__ = ("latch", "keys", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.latch = OptimisticLatch()
        self.keys: list[Any] = []
        self.is_leaf = is_leaf


class _LeafNode(_Node):
    __slots__ = ("values", "next_leaf")

    def __init__(self) -> None:
        super().__init__(is_leaf=True)
        self.values: list[Any] = []
        self.next_leaf: "_LeafNode | None" = None


class _InnerNode(_Node):
    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__(is_leaf=False)
        self.children: list[_Node] = []

    def child_for(self, key: Any) -> _Node:
        index = bisect.bisect_right(self.keys, key)
        return self.children[index]


class BPlusTree:
    """A thread-safe ordered map with OLC synchronisation."""

    def __init__(self, fanout: int = DEFAULT_FANOUT) -> None:
        if fanout < 4:
            raise ValueError("fanout must be at least 4")
        self.fanout = fanout
        self._root: _Node = _LeafNode()
        self._root_latch = OptimisticLatch()
        self._structure_lock = threading.RLock()
        self._size = 0
        self._size_lock = threading.Lock()
        self.restarts = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, key: Any, default: Any = None) -> Any:
        """Optimistic point lookup."""
        for _ in range(MAX_RESTARTS):
            try:
                return self._get_once(key, default)
            except OlcRestart:
                self.restarts += 1
        raise RuntimeError("B+Tree lookup livelocked")

    def _get_once(self, key: Any, default: Any) -> Any:
        root_version = self._root_latch.read_lock_or_restart()
        node = self._root
        self._root_latch.check_or_restart(root_version)
        version = node.latch.read_lock_or_restart()
        while not node.is_leaf:
            inner: _InnerNode = node  # type: ignore[assignment]
            child = inner.child_for(key)
            # Lock coupling: validate the parent *after* reading the child
            # pointer, then move the "read lock" to the child.
            child_version = child.latch.read_lock_or_restart()
            node.latch.check_or_restart(version)
            node, version = child, child_version
        leaf: _LeafNode = node  # type: ignore[assignment]
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            value = leaf.values[index]
        else:
            value = default
        leaf.latch.check_or_restart(version)
        return value

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __len__(self) -> int:
        with self._size_lock:
            return self._size

    # ------------------------------------------------------------------
    # Insert / update
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> bool:
        """Insert or overwrite; returns True when the key was new."""
        for _ in range(MAX_RESTARTS):
            try:
                return self._insert_optimistic(key, value)
            except OlcRestart:
                self.restarts += 1
                try:
                    return self._insert_pessimistic(key, value)
                except OlcRestart:
                    self.restarts += 1
        raise RuntimeError("B+Tree insert livelocked")

    def _insert_optimistic(self, key: Any, value: Any) -> bool:
        root_version = self._root_latch.read_lock_or_restart()
        node = self._root
        self._root_latch.check_or_restart(root_version)
        version = node.latch.read_lock_or_restart()
        while not node.is_leaf:
            inner: _InnerNode = node  # type: ignore[assignment]
            child = inner.child_for(key)
            child_version = child.latch.read_lock_or_restart()
            node.latch.check_or_restart(version)
            node, version = child, child_version
        leaf: _LeafNode = node  # type: ignore[assignment]
        if len(leaf.keys) >= self.fanout:
            # Needs a split; take the pessimistic path.
            raise OlcRestart
        leaf.latch.upgrade_to_write_lock_or_restart(version)
        try:
            return self._leaf_put(leaf, key, value)
        finally:
            leaf.latch.write_unlock()

    def _insert_pessimistic(self, key: Any, value: Any) -> bool:
        """Top-down descent holding the structure lock; splits eagerly."""
        with self._structure_lock:
            if len(self._root.keys) >= self.fanout:
                self._split_root()
            node = self._root
            while not node.is_leaf:
                inner: _InnerNode = node  # type: ignore[assignment]
                index = bisect.bisect_right(inner.keys, key)
                child = inner.children[index]
                if len(child.keys) >= self.fanout:
                    self._split_child(inner, index)
                    index = bisect.bisect_right(inner.keys, key)
                    child = inner.children[index]
                node = child
            leaf: _LeafNode = node  # type: ignore[assignment]
            leaf.latch.write_lock()
            try:
                return self._leaf_put(leaf, key, value)
            finally:
                leaf.latch.write_unlock()

    def _leaf_put(self, leaf: _LeafNode, key: Any, value: Any) -> bool:
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            leaf.values[index] = value
            return False
        leaf.keys.insert(index, key)
        leaf.values.insert(index, value)
        with self._size_lock:
            self._size += 1
        return True

    # ------------------------------------------------------------------
    # Structural modifications (under the structure lock)
    # ------------------------------------------------------------------
    def _split_root(self) -> None:
        old_root = self._root
        old_root.latch.write_lock()
        self._root_latch.write_lock()
        try:
            new_root = _InnerNode()
            separator, right = self._split_node(old_root)
            new_root.keys = [separator]
            new_root.children = [old_root, right]
            self._root = new_root
        finally:
            self._root_latch.write_unlock()
            old_root.latch.write_unlock()

    def _split_child(self, parent: _InnerNode, index: int) -> None:
        child = parent.children[index]
        parent.latch.write_lock()
        child.latch.write_lock()
        try:
            separator, right = self._split_node(child)
            parent.keys.insert(index, separator)
            parent.children.insert(index + 1, right)
        finally:
            child.latch.write_unlock()
            parent.latch.write_unlock()

    def _split_node(self, node: _Node) -> tuple[Any, _Node]:
        """Split ``node`` in half; return (separator key, right sibling)."""
        middle = len(node.keys) // 2
        if node.is_leaf:
            leaf: _LeafNode = node  # type: ignore[assignment]
            right = _LeafNode()
            right.keys = leaf.keys[middle:]
            right.values = leaf.values[middle:]
            right.next_leaf = leaf.next_leaf
            leaf.keys = leaf.keys[:middle]
            leaf.values = leaf.values[:middle]
            leaf.next_leaf = right
            return right.keys[0], right
        inner: _InnerNode = node  # type: ignore[assignment]
        right_inner = _InnerNode()
        separator = inner.keys[middle]
        right_inner.keys = inner.keys[middle + 1:]
        right_inner.children = inner.children[middle + 1:]
        inner.keys = inner.keys[:middle]
        inner.children = inner.children[: middle + 1]
        return separator, right_inner

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------
    def delete(self, key: Any) -> bool:
        """Remove ``key``; returns True when it existed.

        Leaves are allowed to underflow (no rebalancing), the common
        simplification in latch-free/optimistic trees; empty leaves are
        retired lazily on subsequent splits.
        """
        for _ in range(MAX_RESTARTS):
            try:
                return self._delete_once(key)
            except OlcRestart:
                self.restarts += 1
        raise RuntimeError("B+Tree delete livelocked")

    def _delete_once(self, key: Any) -> bool:
        root_version = self._root_latch.read_lock_or_restart()
        node = self._root
        self._root_latch.check_or_restart(root_version)
        version = node.latch.read_lock_or_restart()
        while not node.is_leaf:
            inner: _InnerNode = node  # type: ignore[assignment]
            child = inner.child_for(key)
            child_version = child.latch.read_lock_or_restart()
            node.latch.check_or_restart(version)
            node, version = child, child_version
        leaf: _LeafNode = node  # type: ignore[assignment]
        leaf.latch.upgrade_to_write_lock_or_restart(version)
        try:
            index = bisect.bisect_left(leaf.keys, key)
            if index < len(leaf.keys) and leaf.keys[index] == key:
                del leaf.keys[index]
                del leaf.values[index]
                with self._size_lock:
                    self._size -= 1
                return True
            return False
        finally:
            leaf.latch.write_unlock()

    # ------------------------------------------------------------------
    # Range scans
    # ------------------------------------------------------------------
    def range(self, low: Any, high: Any) -> list[tuple[Any, Any]]:
        """All (key, value) pairs with ``low <= key <= high``.

        The scan walks the leaf chain; each leaf is read optimistically
        and revalidated, restarting the whole scan on interference.
        """
        for _ in range(MAX_RESTARTS):
            try:
                return self._range_once(low, high)
            except OlcRestart:
                self.restarts += 1
        raise RuntimeError("B+Tree range scan livelocked")

    def _range_once(self, low: Any, high: Any) -> list[tuple[Any, Any]]:
        results: list[tuple[Any, Any]] = []
        root_version = self._root_latch.read_lock_or_restart()
        node = self._root
        self._root_latch.check_or_restart(root_version)
        version = node.latch.read_lock_or_restart()
        while not node.is_leaf:
            inner: _InnerNode = node  # type: ignore[assignment]
            child = inner.child_for(low)
            child_version = child.latch.read_lock_or_restart()
            node.latch.check_or_restart(version)
            node, version = child, child_version
        leaf: _LeafNode | None = node  # type: ignore[assignment]
        while leaf is not None:
            start = bisect.bisect_left(leaf.keys, low)
            chunk: list[tuple[Any, Any]] = []
            done = False
            for i in range(start, len(leaf.keys)):
                if leaf.keys[i] > high:
                    done = True
                    break
                chunk.append((leaf.keys[i], leaf.values[i]))
            next_leaf = leaf.next_leaf
            leaf.latch.check_or_restart(version)
            results.extend(chunk)
            if done or next_leaf is None:
                return results
            leaf = next_leaf
            version = leaf.latch.read_lock_or_restart()
        return results

    def items(self) -> Iterator[tuple[Any, Any]]:
        """Snapshot iteration over all pairs, in key order."""
        with self._structure_lock:
            node = self._root
            while not node.is_leaf:
                node = node.children[0]  # type: ignore[union-attr]
            leaf: _LeafNode | None = node  # type: ignore[assignment]
            pairs: list[tuple[Any, Any]] = []
            while leaf is not None:
                pairs.extend(zip(leaf.keys, leaf.values))
                leaf = leaf.next_leaf
        return iter(pairs)

    # ------------------------------------------------------------------
    def depth(self) -> int:
        with self._structure_lock:
            depth = 1
            node = self._root
            while not node.is_leaf:
                depth += 1
                node = node.children[0]  # type: ignore[union-attr]
            return depth

    def check_invariants(self) -> None:
        """Validate ordering and structure (test helper)."""
        with self._structure_lock:
            self._check_node(self._root, None, None)

    def _check_node(self, node: _Node, low: Any, high: Any) -> None:
        keys = node.keys
        assert keys == sorted(keys), "keys out of order"
        for key in keys:
            if low is not None:
                assert key >= low, "key below subtree bound"
            if high is not None:
                assert key < high, "key above subtree bound"
        if node.is_leaf:
            leaf: _LeafNode = node  # type: ignore[assignment]
            assert len(leaf.keys) == len(leaf.values)
            return
        inner: _InnerNode = node  # type: ignore[assignment]
        assert len(inner.children) == len(keys) + 1
        bounds = [low, *keys, high]
        for i, child in enumerate(inner.children):
            self._check_node(child, bounds[i], bounds[i + 1])
