"""Optimistic lock coupling primitives (Leis et al. [24]).

An :class:`OptimisticLatch` is a versioned latch: readers take no lock —
they read the version, do their work, and *validate* that the version is
unchanged; writers acquire the latch exclusively and bump the version on
release, invalidating concurrent readers, who then restart.

The original uses a single atomic word (version + lock bit + obsolete
bit); CPython has no CAS on plain ints, so the word is guarded by a tiny
mutex.  The protocol — and in particular the restart semantics the
B+Tree depends on — is identical.
"""

from __future__ import annotations

import threading


class OlcRestart(Exception):
    """A validation failed; the operation must restart from the root."""


class OptimisticLatch:
    """Versioned latch supporting optimistic reads and exclusive writes."""

    __slots__ = ("_version", "_locked", "_obsolete", "_mutex")

    def __init__(self) -> None:
        self._version = 0
        self._locked = False
        self._obsolete = False
        self._mutex = threading.Lock()

    # ------------------------------------------------------------------
    # Optimistic read protocol
    # ------------------------------------------------------------------
    def read_lock_or_restart(self) -> int:
        """Capture the current version; restart while a writer holds it."""
        with self._mutex:
            if self._obsolete:
                raise OlcRestart
            if self._locked:
                raise OlcRestart
            return self._version

    def check_or_restart(self, version: int) -> None:
        """Validate that no writer intervened since ``version``."""
        with self._mutex:
            if self._obsolete or self._locked or self._version != version:
                raise OlcRestart

    # ------------------------------------------------------------------
    # Write protocol
    # ------------------------------------------------------------------
    def upgrade_to_write_lock_or_restart(self, version: int) -> None:
        """Atomically upgrade a validated read to an exclusive lock."""
        with self._mutex:
            if self._obsolete or self._locked or self._version != version:
                raise OlcRestart
            self._locked = True

    def write_lock(self) -> None:
        """Blocking exclusive acquire (pessimistic fallback path)."""
        while True:
            with self._mutex:
                if self._obsolete:
                    raise OlcRestart
                if not self._locked:
                    self._locked = True
                    return
            # Brief spin; contention on a node is short-lived.
            threading.Event().wait(0.0001)

    def write_unlock(self) -> None:
        """Release and invalidate concurrent optimistic readers."""
        with self._mutex:
            if not self._locked:
                raise RuntimeError("write_unlock without a write lock")
            self._version += 1
            self._locked = False

    def write_unlock_obsolete(self) -> None:
        """Release, marking the node dead (it was merged/replaced)."""
        with self._mutex:
            if not self._locked:
                raise RuntimeError("write_unlock_obsolete without a write lock")
            self._version += 1
            self._locked = False
            self._obsolete = True

    # ------------------------------------------------------------------
    @property
    def is_locked(self) -> bool:
        with self._mutex:
            return self._locked

    @property
    def is_obsolete(self) -> bool:
        with self._mutex:
            return self._obsolete

    @property
    def version(self) -> int:
        with self._mutex:
            return self._version
