"""FIFO replacement (ablation baseline): evict in insertion order."""

from __future__ import annotations

import threading
from collections import OrderedDict

from .base import ReplacementPolicy


class FifoReplacer(ReplacementPolicy):
    """First-in-first-out victim selection; accesses are ignored."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._order: OrderedDict[int, None] = OrderedDict()
        self._lock = threading.Lock()

    def insert(self, frame: int) -> None:
        self._check(frame)
        with self._lock:
            if frame not in self._order:
                self._order[frame] = None

    def remove(self, frame: int) -> None:
        self._check(frame)
        with self._lock:
            self._order.pop(frame, None)

    def record_access(self, frame: int) -> None:
        self._check(frame)
        # FIFO deliberately ignores accesses.

    def victim(self) -> int | None:
        with self._lock:
            if not self._order:
                return None
            return next(iter(self._order))

    def __len__(self) -> int:
        with self._lock:
            return len(self._order)

    def __contains__(self, frame: int) -> bool:
        self._check(frame)
        with self._lock:
            return frame in self._order

    def _check(self, frame: int) -> None:
        if not 0 <= frame < self.capacity:
            raise IndexError(f"frame {frame} out of range [0, {self.capacity})")
