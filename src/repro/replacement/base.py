"""Replacement-policy interface shared by CLOCK, LRU, and FIFO.

A replacer tracks the set of frames currently in a buffer pool and picks
victims when space must be reclaimed.  Frames are identified by integer
frame indexes; the buffer pool owns the frame → page mapping.  Pinned
frames are the pool's concern: the pool keeps asking for victims until it
finds an evictable one, returning skipped frames to the replacer.
"""

from __future__ import annotations

import abc


class ReplacementPolicy(abc.ABC):
    """Abstract victim-selection policy over integer frame indexes."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("replacer capacity must be positive")
        self.capacity = capacity

    @abc.abstractmethod
    def insert(self, frame: int) -> None:
        """Register a newly filled frame."""

    @abc.abstractmethod
    def remove(self, frame: int) -> None:
        """Forget a frame (it was evicted or invalidated)."""

    @abc.abstractmethod
    def record_access(self, frame: int) -> None:
        """Note a hit on ``frame``."""

    def record_access_batch(self, frames) -> None:
        """Note hits on many frames, in order.

        The default replays :meth:`record_access` per frame, which is
        exact for any policy.  Policies whose access bookkeeping is
        idempotent (CLOCK's reference bits) may override this with a
        deduplicated bulk update.
        """
        for frame in frames:
            self.record_access(frame)

    @abc.abstractmethod
    def victim(self) -> int | None:
        """Pick a frame to evict, or None when empty."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of frames currently tracked."""

    @abc.abstractmethod
    def __contains__(self, frame: int) -> bool:
        """Whether ``frame`` is currently tracked."""
