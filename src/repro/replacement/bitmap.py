"""A thread-safe bitmap used for CLOCK reference bits.

The paper's implementation uses a non-blocking concurrent bitmap
(NB-GCLOCK [40]); CPython cannot express lock-free CAS loops, so this
bitmap uses a single fine lock around word updates — the semantics
(atomic test/set/clear of individual bits) are identical.
"""

from __future__ import annotations

import threading


class ConcurrentBitmap:
    """Fixed-size bitmap with atomic bit operations."""

    _WORD_BITS = 64

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("bitmap size must be positive")
        self._size = size
        nwords = (size + self._WORD_BITS - 1) // self._WORD_BITS
        self._words = [0] * nwords
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return self._size

    def _locate(self, index: int) -> tuple[int, int]:
        if not 0 <= index < self._size:
            raise IndexError(f"bit {index} out of range [0, {self._size})")
        return index // self._WORD_BITS, 1 << (index % self._WORD_BITS)

    def set(self, index: int) -> bool:
        """Set a bit; return the previous value."""
        word, mask = self._locate(index)
        with self._lock:
            previous = bool(self._words[word] & mask)
            self._words[word] |= mask
            return previous

    def clear(self, index: int) -> bool:
        """Clear a bit; return the previous value."""
        word, mask = self._locate(index)
        with self._lock:
            previous = bool(self._words[word] & mask)
            self._words[word] &= ~mask
            return previous

    def test(self, index: int) -> bool:
        word, mask = self._locate(index)
        with self._lock:
            return bool(self._words[word] & mask)

    def test_and_clear(self, index: int) -> bool:
        """Atomically read and clear a bit (the CLOCK hand's primitive)."""
        return self.clear(index)

    def count(self) -> int:
        with self._lock:
            return sum(word.bit_count() for word in self._words)

    def clear_all(self) -> None:
        with self._lock:
            for i in range(len(self._words)):
                self._words[i] = 0
