"""CLOCK page replacement over a concurrent bitmap.

Both HyMem and Spitfire reclaim buffer space with CLOCK [34]: a hand
sweeps the frames; a frame with its reference bit set gets a second
chance (the bit is cleared), a frame with a clear bit is the victim.
Reference bits live in a :class:`~repro.replacement.bitmap.ConcurrentBitmap`
so that hits never take the sweep lock.
"""

from __future__ import annotations

import threading

from .base import ReplacementPolicy
from .bitmap import ConcurrentBitmap


class ClockReplacer(ReplacementPolicy):
    """Second-chance CLOCK replacement."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._ref_bits = ConcurrentBitmap(capacity)
        self._present = [False] * capacity
        self._hand = 0
        self._count = 0
        self._sweep_lock = threading.Lock()

    def insert(self, frame: int) -> None:
        self._check(frame)
        with self._sweep_lock:
            if not self._present[frame]:
                self._present[frame] = True
                self._count += 1
        # New pages start with their reference bit set so a fresh page is
        # not immediately chosen by a sweeping hand.
        self._ref_bits.set(frame)

    def remove(self, frame: int) -> None:
        self._check(frame)
        with self._sweep_lock:
            if self._present[frame]:
                self._present[frame] = False
                self._count -= 1
        self._ref_bits.clear(frame)

    def record_access(self, frame: int) -> None:
        self._check(frame)
        self._ref_bits.set(frame)

    def record_access_batch(self, frames) -> None:
        # Setting a reference bit is idempotent and no sweep runs between
        # the accesses of one batched run, so deduplicating frames leaves
        # the bitmap in exactly the state a per-op replay would.
        for frame in set(frames):
            self._check(frame)
            self._ref_bits.set(frame)

    def victim(self) -> int | None:
        """Sweep the hand until a frame with a clear reference bit is found.

        At most two full sweeps are needed: the first pass clears every
        set bit, so the second pass must find a victim (unless the pool is
        empty).
        """
        with self._sweep_lock:
            if self._count == 0:
                return None
            for _ in range(2 * self.capacity + 1):
                frame = self._hand
                self._hand = (self._hand + 1) % self.capacity
                if not self._present[frame]:
                    continue
                if self._ref_bits.test_and_clear(frame):
                    continue  # second chance
                return frame
        raise RuntimeError("CLOCK failed to find a victim in two sweeps")

    def __len__(self) -> int:
        return self._count

    def __contains__(self, frame: int) -> bool:
        self._check(frame)
        return self._present[frame]

    def _check(self, frame: int) -> None:
        if not 0 <= frame < self.capacity:
            raise IndexError(f"frame {frame} out of range [0, {self.capacity})")
