"""Strict LRU replacement (ablation baseline).

The paper uses CLOCK everywhere; LRU is included so the test suite and
the replacement-policy ablation can compare CLOCK's approximation of
recency against the exact policy it approximates.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from .base import ReplacementPolicy


class LruReplacer(ReplacementPolicy):
    """Exact least-recently-used victim selection."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._order: OrderedDict[int, None] = OrderedDict()
        self._lock = threading.Lock()

    def insert(self, frame: int) -> None:
        self._check(frame)
        with self._lock:
            self._order[frame] = None
            self._order.move_to_end(frame)

    def remove(self, frame: int) -> None:
        self._check(frame)
        with self._lock:
            self._order.pop(frame, None)

    def record_access(self, frame: int) -> None:
        self._check(frame)
        with self._lock:
            if frame in self._order:
                self._order.move_to_end(frame)

    def victim(self) -> int | None:
        with self._lock:
            if not self._order:
                return None
            frame, _ = self._order.popitem(last=False)
            # The pool decides whether the eviction goes ahead; keep the
            # frame registered until remove() is called.
            self._order[frame] = None
            self._order.move_to_end(frame, last=False)
            return frame

    def __len__(self) -> int:
        with self._lock:
            return len(self._order)

    def __contains__(self, frame: int) -> bool:
        self._check(frame)
        with self._lock:
            return frame in self._order

    def _check(self, frame: int) -> None:
        if not 0 <= frame < self.capacity:
            raise IndexError(f"frame {frame} out of range [0, {self.capacity})")
