"""Cache replacement policies: CLOCK (the paper's choice), LRU, FIFO."""

from .base import ReplacementPolicy
from .bitmap import ConcurrentBitmap
from .clock import ClockReplacer
from .fifo import FifoReplacer
from .lru import LruReplacer

#: Registry used by configuration code and the replacement ablation bench.
POLICIES: dict[str, type[ReplacementPolicy]] = {
    "clock": ClockReplacer,
    "lru": LruReplacer,
    "fifo": FifoReplacer,
}


def make_replacer(name: str, capacity: int) -> ReplacementPolicy:
    """Instantiate a replacement policy by name."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None
    return cls(capacity)


__all__ = [
    "ClockReplacer",
    "ConcurrentBitmap",
    "FifoReplacer",
    "LruReplacer",
    "POLICIES",
    "ReplacementPolicy",
    "make_replacer",
]
