"""Mini-page layout (Fig. 2b of the paper).

A mini page is a compact DRAM representation of a cache-line-grained page
that holds at most sixteen cache lines.  A ``slots`` array maps each
occupied slot to the logical cache-line number it caches; ``count``
tracks occupancy and a dirty mask records which slots must be written
back.  When a seventeenth distinct line is needed the mini page
*overflows* and is transparently promoted to a full page.

The header (count, slots, dirty mask, flags) fits in one cache line.
"""

from __future__ import annotations

import threading

from ..hardware.specs import CACHE_LINE_SIZE
from .page import Page, PageId

#: Maximum number of cache lines a mini page can hold.
MINI_PAGE_SLOTS = 16

#: Header size: one cache line.
MINI_PAGE_HEADER_BYTES = CACHE_LINE_SIZE

#: DRAM footprint of a mini page: header + 16 cache lines.
MINI_PAGE_BYTES = MINI_PAGE_HEADER_BYTES + MINI_PAGE_SLOTS * CACHE_LINE_SIZE


class MiniPageOverflow(Exception):
    """Raised when an access needs more slots than the mini page has.

    The buffer manager catches this and promotes the mini page to a full
    :class:`~repro.pages.cacheline_page.CacheLinePage`.
    """

    def __init__(self, page_id: PageId, needed: int) -> None:
        super().__init__(
            f"mini page {page_id} overflow: needs {needed} slots, has {MINI_PAGE_SLOTS}"
        )
        self.page_id = page_id
        self.needed = needed


class MiniPage:
    """A sixteen-slot mini page caching lines of an NVM-resident page."""

    __slots__ = ("page_id", "nvm_page", "_slots", "_dirty", "_lock")

    def __init__(self, nvm_page: Page) -> None:
        self.page_id: PageId = nvm_page.page_id
        self.nvm_page = nvm_page
        #: slot index -> logical cache-line number (insertion ordered).
        self._slots: list[int] = []
        self._dirty = 0  # bit per slot
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self._slots)

    @property
    def full(self) -> bool:
        return len(self._slots) >= MINI_PAGE_SLOTS

    @property
    def slots(self) -> tuple[int, ...]:
        with self._lock:
            return tuple(self._slots)

    @property
    def dirty_mask(self) -> int:
        return self._dirty

    @property
    def is_dirty(self) -> bool:
        return self._dirty != 0

    @property
    def dirty_count(self) -> int:
        return self._dirty.bit_count()

    def resident_bytes(self) -> int:
        return MINI_PAGE_HEADER_BYTES + self.count * CACHE_LINE_SIZE

    # ------------------------------------------------------------------
    def lookup(self, line: int) -> int | None:
        """Slot holding logical ``line``, or None when not cached.

        This is the slot search whose cost grows with the loading unit;
        §6.5 attributes the mini page's limited benefit on Optane to this
        per-access overhead.
        """
        with self._lock:
            try:
                return self._slots.index(line)
            except ValueError:
                return None

    def ensure_lines(self, lines: list[int]) -> int:
        """Make every line in ``lines`` resident; return newly loaded count.

        Raises :class:`MiniPageOverflow` when the lines would not fit, in
        which case no slot is consumed (all-or-nothing), matching the
        transparent-promotion behaviour in the paper.
        """
        with self._lock:
            missing = [ln for ln in dict.fromkeys(lines) if ln not in self._slots]
            if len(self._slots) + len(missing) > MINI_PAGE_SLOTS:
                raise MiniPageOverflow(self.page_id, len(self._slots) + len(missing))
            self._slots.extend(missing)
            return len(missing)

    def mark_dirty(self, line: int) -> None:
        with self._lock:
            try:
                slot = self._slots.index(line)
            except ValueError:
                raise ValueError(f"line {line} is not resident in mini page") from None
            self._dirty |= 1 << slot

    def writeback_lines(self) -> list[int]:
        """Dirty logical lines to flush to NVM; clears the dirty mask."""
        with self._lock:
            dirty = [
                line
                for slot, line in enumerate(self._slots)
                if self._dirty & (1 << slot)
            ]
            self._dirty = 0
            return dirty

    def resident_lines(self) -> list[int]:
        with self._lock:
            return list(self._slots)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MiniPage(id={self.page_id}, count={self.count}, "
            f"dirty={self.dirty_count})"
        )
