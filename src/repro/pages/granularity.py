"""Loading-granularity model (Fig. 11 of the paper).

HyMem loads NVM data into DRAM at cache-line (64 B) granularity.  Optane
DC PMMs, however, access media in 256 B blocks, so a 64 B load still
costs a 256 B media read — pure I/O amplification.  Conversely, very
large loading units (512 B+) transfer data the access never touches.
Throughput therefore peaks at the 256 B media granularity.

:class:`LoadingUnit` converts a byte-range access into the number of
loading-unit transfers and the bytes actually moved on the device.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.specs import CACHE_LINE_SIZE, NVM_MEDIA_GRANULARITY, PAGE_SIZE

#: The loading granularities swept in Fig. 11.
FIG11_GRANULARITIES = (64, 128, 256, 512)


@dataclass(frozen=True)
class LoadingUnit:
    """Granularity at which data moves from NVM into a DRAM page copy."""

    nbytes: int = NVM_MEDIA_GRANULARITY

    def __post_init__(self) -> None:
        if self.nbytes < CACHE_LINE_SIZE:
            raise ValueError("loading unit must be at least one cache line")
        if self.nbytes % CACHE_LINE_SIZE:
            raise ValueError("loading unit must be a multiple of the cache line size")
        if self.nbytes > PAGE_SIZE:
            raise ValueError("loading unit cannot exceed the page size")

    @property
    def lines_per_unit(self) -> int:
        return self.nbytes // CACHE_LINE_SIZE

    def units_for_bytes(self, nbytes: int) -> int:
        """Number of loading-unit transfers covering an ``nbytes`` access."""
        if nbytes <= 0:
            return 0
        return (nbytes + self.nbytes - 1) // self.nbytes

    def lines_for_bytes(self, nbytes: int) -> int:
        """Cache lines made resident by loading ``nbytes`` worth of data."""
        return self.units_for_bytes(nbytes) * self.lines_per_unit

    def transfer_bytes(self, nbytes: int) -> int:
        """Logical bytes issued to the device for an ``nbytes`` access."""
        return self.units_for_bytes(nbytes) * self.nbytes

    def media_bytes(self, nbytes: int, media_granularity: int = NVM_MEDIA_GRANULARITY) -> int:
        """Bytes actually read from media, including amplification.

        Each loading-unit transfer is rounded up to the device media
        granularity independently, which is what penalises 64 B loading
        units on a 256 B-granularity device.
        """
        units = self.units_for_bytes(nbytes)
        per_unit = max(self.nbytes, media_granularity)
        # Round per-unit transfer up to a whole number of media blocks.
        blocks = (per_unit + media_granularity - 1) // media_granularity
        return units * blocks * media_granularity

    def amplification(self, nbytes: int) -> float:
        """media bytes / useful bytes for an ``nbytes`` access."""
        if nbytes <= 0:
            return 0.0
        return self.media_bytes(nbytes) / nbytes


#: Default loading unit once tuned for Optane (§6.5 recommends 256 B).
OPTANE_LOADING_UNIT = LoadingUnit(NVM_MEDIA_GRANULARITY)

#: HyMem's original cache-line loading unit.
HYMEM_LOADING_UNIT = LoadingUnit(CACHE_LINE_SIZE)
