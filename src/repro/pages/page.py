"""Logical database pages.

A :class:`Page` is the 16 KB unit that moves between tiers.  Content is
stored as a slot → payload mapping rather than raw bytes: the simulation
charges device costs for the *logical* 16 KB, while keeping the Python
memory footprint proportional to the live records.  Recovery and engine
tests rely on the content being faithfully copied during migrations.
"""

from __future__ import annotations

import threading
from ..hardware.specs import CACHE_LINE_SIZE, PAGE_SIZE

PageId = int

#: Sentinel for "no page".
INVALID_PAGE_ID: PageId = -1


class Page:
    """A logical database page.

    Parameters
    ----------
    page_id:
        Stable logical identifier (the mapping-table key).
    size:
        Logical size in bytes; device transfers of the whole page charge
        this many bytes.
    """

    __slots__ = ("page_id", "size", "lsn", "records", "_lock")

    def __init__(self, page_id: PageId, size: int = PAGE_SIZE) -> None:
        if page_id < 0:
            raise ValueError("page_id must be non-negative")
        if size <= 0:
            raise ValueError("size must be positive")
        self.page_id = page_id
        self.size = size
        #: Log sequence number of the last update applied to this copy.
        self.lsn = 0
        self.records: dict[int, bytes] = {}
        self._lock = threading.Lock()

    @property
    def num_cache_lines(self) -> int:
        return self.size // CACHE_LINE_SIZE

    def read_record(self, slot: int) -> bytes | None:
        with self._lock:
            return self.records.get(slot)

    def write_record(self, slot: int, value: bytes, lsn: int | None = None) -> None:
        with self._lock:
            self.records[slot] = value
            if lsn is not None and lsn > self.lsn:
                self.lsn = lsn

    def delete_record(self, slot: int) -> bool:
        with self._lock:
            return self.records.pop(slot, None) is not None

    def copy_from(self, other: "Page") -> None:
        """Overwrite this copy's content with ``other``'s (tier migration)."""
        if other.page_id != self.page_id:
            raise ValueError(
                f"cannot copy page {other.page_id} into page {self.page_id}"
            )
        with other._lock:
            records = dict(other.records)
            lsn = other.lsn
        with self._lock:
            self.records = records
            self.lsn = lsn

    def clone(self) -> "Page":
        """An independent deep copy (used when installing on a new tier)."""
        fresh = Page(self.page_id, self.size)
        fresh.copy_from(self)
        return fresh

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Page(id={self.page_id}, lsn={self.lsn}, records={len(self.records)})"
