"""Cache-line-grained page layout (Fig. 2a of the paper).

A cache-line-grained page is a DRAM-resident view of an NVM-backed page
that loads only the cache lines actually accessed.  Two bitmasks track
which lines are *resident* and which are *dirty*; the ``r``/``d`` bits
summarise full residency/dirtiness.  The header (bitmasks + NVM back
pointer) fits in two cache lines.

HyMem proposed loading at 64 B (one cache line); §6.5 of the paper shows
that on Optane the device media granularity is 256 B, so loads smaller
than that are amplified.  The *loading unit* is therefore a parameter
(:class:`LoadingUnit` in :mod:`repro.pages.granularity`).
"""

from __future__ import annotations

import threading

from ..hardware.specs import CACHE_LINE_SIZE, PAGE_SIZE
from .page import Page, PageId

#: Header size: resident mask + dirty mask + flags + NVM pointer = 2 lines.
CACHE_LINE_PAGE_HEADER_BYTES = 2 * CACHE_LINE_SIZE


class CacheLinePage:
    """A partially loaded DRAM copy of an NVM-resident page.

    The bitmask operations use arbitrary-precision ints (one bit per cache
    line), mirroring the paper's layout where each mask covers the page's
    256 cache lines.
    """

    __slots__ = (
        "page_id",
        "size",
        "nvm_page",
        "_resident",
        "_dirty",
        "_num_lines",
        "_lock",
    )

    def __init__(self, nvm_page: Page, size: int = PAGE_SIZE) -> None:
        self.page_id: PageId = nvm_page.page_id
        self.size = size
        #: Back pointer to the underlying NVM page for on-demand loads.
        self.nvm_page = nvm_page
        self._num_lines = size // CACHE_LINE_SIZE
        self._resident = 0
        self._dirty = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def num_lines(self) -> int:
        return self._num_lines

    @property
    def resident_mask(self) -> int:
        return self._resident

    @property
    def dirty_mask(self) -> int:
        return self._dirty

    @property
    def resident_count(self) -> int:
        return self._resident.bit_count()

    @property
    def dirty_count(self) -> int:
        return self._dirty.bit_count()

    @property
    def fully_resident(self) -> bool:
        """The ``r`` bit: every line of the page is loaded."""
        return self.resident_count == self._num_lines

    @property
    def fully_dirty(self) -> bool:
        """The ``d`` bit: every line of the page is dirty."""
        return self.dirty_count == self._num_lines

    @property
    def is_dirty(self) -> bool:
        return self._dirty != 0

    # ------------------------------------------------------------------
    def _check_range(self, first_line: int, nlines: int) -> None:
        if first_line < 0 or nlines <= 0 or first_line + nlines > self._num_lines:
            raise ValueError(
                f"line range [{first_line}, {first_line + nlines}) outside "
                f"page of {self._num_lines} lines"
            )

    @staticmethod
    def _range_mask(first_line: int, nlines: int) -> int:
        return ((1 << nlines) - 1) << first_line

    def missing_lines(self, first_line: int, nlines: int) -> int:
        """Number of not-yet-resident lines in the requested range."""
        self._check_range(first_line, nlines)
        mask = self._range_mask(first_line, nlines)
        with self._lock:
            return (mask & ~self._resident & ((1 << self._num_lines) - 1)).bit_count()

    def load_lines(self, first_line: int, nlines: int) -> int:
        """Mark a line range resident; return how many were newly loaded.

        The caller charges the device cost for the newly loaded lines
        (possibly rounded up to the loading unit).
        """
        self._check_range(first_line, nlines)
        mask = self._range_mask(first_line, nlines)
        with self._lock:
            newly = mask & ~self._resident
            self._resident |= mask
            return newly.bit_count()

    def load_all(self) -> int:
        """Load every line (promotion to a fully resident page)."""
        full = (1 << self._num_lines) - 1
        with self._lock:
            newly = full & ~self._resident
            self._resident = full
            return newly.bit_count()

    def mark_dirty(self, first_line: int, nlines: int) -> None:
        """Mark a line range dirty (it must already be resident)."""
        self._check_range(first_line, nlines)
        mask = self._range_mask(first_line, nlines)
        with self._lock:
            if mask & ~self._resident:
                raise ValueError("cannot dirty lines that are not resident")
            self._dirty |= mask

    def writeback_lines(self) -> int:
        """Clear the dirty mask; return the number of lines to write back.

        Only dirty lines are written back to NVM on eviction (Fig. 2's
        ``dirty`` mask is exactly this set).
        """
        with self._lock:
            count = self._dirty.bit_count()
            self._dirty = 0
            return count

    def dirty_bytes(self) -> int:
        return self.dirty_count * CACHE_LINE_SIZE

    def resident_bytes(self) -> int:
        return self.resident_count * CACHE_LINE_SIZE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CacheLinePage(id={self.page_id}, resident={self.resident_count}"
            f"/{self._num_lines}, dirty={self.dirty_count})"
        )
