"""Page layouts: full pages, cache-line-grained pages, mini pages.

Implements the page layer of both HyMem and Spitfire, including the two
HyMem layout optimizations the paper revisits in §6.5 (cache-line-grained
loading and the mini-page layout) and the loading-granularity model used
in the Fig. 11 sweep.
"""

from .cacheline_page import CACHE_LINE_PAGE_HEADER_BYTES, CacheLinePage
from .granularity import (
    FIG11_GRANULARITIES,
    HYMEM_LOADING_UNIT,
    OPTANE_LOADING_UNIT,
    LoadingUnit,
)
from .mini_page import (
    MINI_PAGE_BYTES,
    MINI_PAGE_HEADER_BYTES,
    MINI_PAGE_SLOTS,
    MiniPage,
    MiniPageOverflow,
)
from .page import INVALID_PAGE_ID, Page, PageId

__all__ = [
    "CACHE_LINE_PAGE_HEADER_BYTES",
    "CacheLinePage",
    "FIG11_GRANULARITIES",
    "HYMEM_LOADING_UNIT",
    "INVALID_PAGE_ID",
    "LoadingUnit",
    "MINI_PAGE_BYTES",
    "MINI_PAGE_HEADER_BYTES",
    "MINI_PAGE_SLOTS",
    "MiniPage",
    "MiniPageOverflow",
    "OPTANE_LOADING_UNIT",
    "Page",
    "PageId",
]
