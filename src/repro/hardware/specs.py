"""Device characteristic specifications.

The numbers here transcribe Table 1 of the Spitfire paper (SIGMOD '21):
idle latencies, bandwidths, price, addressability, media access granularity,
persistence, and endurance for DRAM, Optane DC PMMs (NVM), and an Optane DC
P4800X SSD.  Every simulated device in :mod:`repro.hardware.device` is
parameterised by a :class:`DeviceSpec`, so alternative hardware (e.g. a
slower flash SSD, a faster CXL-attached memory) can be modelled by
constructing a new spec.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

#: Number of bytes in one kibibyte / mebibyte / gibibyte.
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Size of a database page in bytes (the paper uses 16 KB pages throughout).
PAGE_SIZE = 16 * KIB

#: Size of one CPU cache line in bytes.
CACHE_LINE_SIZE = 64

#: Number of cache lines in a full page.
CACHE_LINES_PER_PAGE = PAGE_SIZE // CACHE_LINE_SIZE

#: Optane DC PMMs internally access media in 256 B blocks (§6.5, Fig. 11).
NVM_MEDIA_GRANULARITY = 256

#: Nanoseconds per second, used when converting bandwidths.
NS_PER_S = 1_000_000_000


class Tier(enum.Enum):
    """The storage tiers a buffer manager may compose into a chain.

    The paper's configurations use DRAM/NVM/SSD; :attr:`CXL` models a
    CXL-attached memory expander slotted between DRAM and NVM, which the
    N-tier chain supports as a fourth level (§5.3's "deeper hierarchies"
    direction).
    """

    DRAM = "dram"
    CXL = "cxl"
    NVM = "nvm"
    SSD = "ssd"

    def __lt__(self, other: "Tier") -> bool:
        return _TIER_RANK[self] < _TIER_RANK[other]

    @property
    def rank(self) -> int:
        """Position in the top-down tier ordering (0 is fastest)."""
        return _TIER_RANK[self]

    @property
    def is_persistent(self) -> bool:
        return self not in (Tier.DRAM, Tier.CXL)


#: Canonical top-down ordering of every known tier.
_TIER_RANK = {Tier.DRAM: 0, Tier.CXL: 1, Tier.NVM: 2, Tier.SSD: 3}

#: All tiers, fastest first.
TIER_ORDER: tuple[Tier, ...] = (Tier.DRAM, Tier.CXL, Tier.NVM, Tier.SSD)

#: Tiers that may carry a buffer pool (everything above the SSD store).
BUFFER_TIER_ORDER: tuple[Tier, ...] = (Tier.DRAM, Tier.CXL, Tier.NVM)


class Addressability(enum.Enum):
    """Whether the CPU can address the device directly."""

    BYTE = "byte"
    BLOCK = "block"


@dataclass(frozen=True)
class DeviceSpec:
    """Performance and cost characteristics of one storage device.

    Attributes mirror the rows of Table 1 in the paper.  Latencies are in
    nanoseconds, bandwidths in bytes/second, and price in $/GB.
    """

    name: str
    tier: Tier
    seq_read_latency_ns: float
    rand_read_latency_ns: float
    seq_read_bw: float
    rand_read_bw: float
    seq_write_bw: float
    rand_write_bw: float
    price_per_gb: float
    addressability: Addressability
    media_granularity: int
    persistent: bool
    endurance_cycles: float
    #: Extra latency charged for a persistence barrier (clwb + sfence); only
    #: meaningful for persistent, byte-addressable devices.
    persist_barrier_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.media_granularity <= 0:
            raise ValueError("media_granularity must be positive")
        for attr in ("seq_read_bw", "rand_read_bw", "seq_write_bw", "rand_write_bw"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")

    def read_latency_ns(self, sequential: bool = False) -> float:
        """Idle read latency for one access."""
        return self.seq_read_latency_ns if sequential else self.rand_read_latency_ns

    def read_bandwidth(self, sequential: bool = False) -> float:
        """Read bandwidth in bytes/second."""
        return self.seq_read_bw if sequential else self.rand_read_bw

    def write_bandwidth(self, sequential: bool = False) -> float:
        """Write bandwidth in bytes/second."""
        return self.seq_write_bw if sequential else self.rand_write_bw

    def media_bytes(self, nbytes: int) -> int:
        """Bytes actually touched on the media for an ``nbytes`` access.

        Devices move data in multiples of their media access granularity;
        e.g. a 64 B load from Optane still reads a 256 B media block.  This
        is the I/O-amplification effect behind Fig. 11 of the paper.
        """
        if nbytes <= 0:
            return 0
        gran = self.media_granularity
        return ((nbytes + gran - 1) // gran) * gran

    def scaled(self, **overrides: float) -> "DeviceSpec":
        """Return a copy of this spec with selected fields replaced."""
        return replace(self, **overrides)


def _gb_per_s(value: float) -> float:
    return value * 1e9


#: DRAM as characterised in Table 1 (6 modules per socket).
DRAM_SPEC = DeviceSpec(
    name="DDR4 DRAM",
    tier=Tier.DRAM,
    seq_read_latency_ns=75.0,
    rand_read_latency_ns=80.0,
    seq_read_bw=_gb_per_s(180.0),
    rand_read_bw=_gb_per_s(180.0),
    seq_write_bw=_gb_per_s(180.0),
    rand_write_bw=_gb_per_s(180.0),
    price_per_gb=10.0,
    addressability=Addressability.BYTE,
    media_granularity=CACHE_LINE_SIZE,
    persistent=False,
    endurance_cycles=1e10,
)

#: Optane DC Persistent Memory Modules (6 modules per socket).
NVM_SPEC = DeviceSpec(
    name="Optane DC PMM",
    tier=Tier.NVM,
    seq_read_latency_ns=170.0,
    rand_read_latency_ns=320.0,
    seq_read_bw=_gb_per_s(91.2),
    rand_read_bw=_gb_per_s(28.8),
    seq_write_bw=_gb_per_s(27.6),
    rand_write_bw=_gb_per_s(6.0),
    price_per_gb=4.5,
    addressability=Addressability.BYTE,
    media_granularity=NVM_MEDIA_GRANULARITY,
    persistent=True,
    endurance_cycles=1e10,
    persist_barrier_ns=100.0,
)

#: A CXL-attached DRAM memory expander (e.g. a CXL 2.0 Type-3 device).
#: Latency sits between local DRAM and Optane (one switch hop ≈ 170-250 ns
#: loaded), bandwidth is link-bound (~x8 CXL lanes), and the module price
#: undercuts local DRAM because it reuses commodity DDR behind the link.
#: Volatile and byte-addressable, so it slots between DRAM and NVM in a
#: four-tier chain.
CXL_SPEC = DeviceSpec(
    name="CXL DRAM Expander",
    tier=Tier.CXL,
    seq_read_latency_ns=180.0,
    rand_read_latency_ns=250.0,
    seq_read_bw=_gb_per_s(48.0),
    rand_read_bw=_gb_per_s(48.0),
    seq_write_bw=_gb_per_s(48.0),
    rand_write_bw=_gb_per_s(48.0),
    price_per_gb=7.0,
    addressability=Addressability.BYTE,
    media_granularity=CACHE_LINE_SIZE,
    persistent=False,
    endurance_cycles=1e10,
)

#: Intel Optane DC P4800X SSD.
SSD_SPEC = DeviceSpec(
    name="Optane DC P4800X SSD",
    tier=Tier.SSD,
    seq_read_latency_ns=10_000.0,
    rand_read_latency_ns=12_000.0,
    seq_read_bw=_gb_per_s(2.6),
    rand_read_bw=_gb_per_s(2.4),
    seq_write_bw=_gb_per_s(2.4),
    rand_write_bw=_gb_per_s(2.3),
    price_per_gb=2.8,
    addressability=Addressability.BLOCK,
    media_granularity=PAGE_SIZE,
    persistent=True,
    endurance_cycles=1e12,
)

#: Specs indexed by tier, as used by default hierarchies.
DEFAULT_SPECS = {
    Tier.DRAM: DRAM_SPEC,
    Tier.NVM: NVM_SPEC,
    Tier.SSD: SSD_SPEC,
}


@dataclass(frozen=True)
class SimulationScale:
    """Mapping between the paper's gigabyte-scale sizes and simulated pages.

    The paper's experiments are ratio experiments (database size relative to
    buffer capacities), so we run them at a reduced scale: by default one
    simulated "GB" is 64 pages of 16 KB.  All byte counts charged to the
    cost model still use real page sizes, so bandwidth figures stay
    meaningful; only capacities shrink.
    """

    pages_per_gb: int = 64

    def pages(self, gigabytes: float) -> int:
        """Number of simulated pages representing ``gigabytes``."""
        if gigabytes < 0:
            raise ValueError("gigabytes must be non-negative")
        return max(0, int(round(gigabytes * self.pages_per_gb)))

    def gigabytes(self, pages: int) -> float:
        """Inverse of :meth:`pages`."""
        return pages / self.pages_per_gb


#: The default scale used by benchmarks and examples.
DEFAULT_SCALE = SimulationScale()
