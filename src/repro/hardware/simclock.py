"""Simulated clock and per-resource busy-time accounting.

The reproduction replaces wall-clock measurement with a discrete cost
model: every device access and every unit of CPU work charges simulated
nanoseconds to an accumulator.  A bottleneck (saturation) analysis then
converts the accumulated service demands into a simulated makespan for a
given number of workers, from which the benchmark harness derives
throughput.

This is the standard operational-analysis bound: with ``W`` closed-loop
workers the makespan of a batch of operations is at least the total
serialised work divided by ``W`` and at least the busy time of the most
loaded shared resource.  The paper's multi-threaded results are
device-bound (SSD or NVM bandwidth), which this model captures.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


class SimClock:
    """A monotonically advancing simulated clock in nanoseconds.

    The clock is advanced explicitly (e.g. by the cost model or by the
    adaptive controller's epoch logic).  It is thread-safe so that the
    genuinely multi-threaded tests can share one clock.
    """

    def __init__(self, start_ns: int = 0) -> None:
        self._now_ns = float(start_ns)
        self._lock = threading.Lock()

    @property
    def now_ns(self) -> float:
        return self._now_ns

    @property
    def now_s(self) -> float:
        return self._now_ns / 1e9

    def advance(self, delta_ns: float) -> float:
        """Advance the clock by ``delta_ns`` and return the new time."""
        if delta_ns < 0:
            raise ValueError("cannot advance the clock backwards")
        with self._lock:
            self._now_ns += delta_ns
            return self._now_ns

    def advance_to(self, target_ns: float) -> float:
        """Advance the clock to ``target_ns`` if that is in the future.

        Unlike :meth:`advance`, a target in the past is a no-op rather
        than an error — epoch samplers race benignly for the same tick.
        """
        with self._lock:
            if target_ns > self._now_ns:
                self._now_ns = float(target_ns)
            return self._now_ns

    def reset(self) -> None:
        with self._lock:
            self._now_ns = 0.0


@dataclass
class ResourceUsage:
    """Accumulated service demand for a single shared resource."""

    busy_ns: float = 0.0
    operations: int = 0
    bytes_moved: int = 0

    def charge(self, service_ns: float, nbytes: int = 0) -> None:
        self.busy_ns += service_ns
        self.operations += 1
        self.bytes_moved += nbytes

    def as_dict(self) -> dict[str, float | int]:
        """JSON-able form for run results and bench reports."""
        return {
            "busy_ns": self.busy_ns,
            "operations": self.operations,
            "bytes_moved": self.bytes_moved,
        }

    def merged(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            busy_ns=self.busy_ns + other.busy_ns,
            operations=self.operations + other.operations,
            bytes_moved=self.bytes_moved + other.bytes_moved,
        )


class _CpuBatch(threading.local):
    """Per-thread deferred CPU demand for one logical operation.

    ``threading.local`` keeps concurrent workers' pending charges apart
    without any locking; ``__init__`` runs once per thread.  Charges are
    kept as a list (not a running sum) so committing them replays the
    exact float-addition order an unbatched run would have used —
    results stay bit-for-bit identical.
    """

    def __init__(self) -> None:
        self.depth = 0
        self.pending: list[float] = []


class CostAccumulator:
    """Collects per-resource service demands for a batch of operations.

    Resources are identified by string keys: ``"cpu"`` plus one key per
    device channel (``"dram"``, ``"nvm"``, ``"ssd"``).  CPU demand is
    divisible across workers; device demand saturates at the device's
    aggregate bandwidth regardless of worker count.

    One buffer-manager operation makes several small CPU charges (hash
    lookup, device access latencies, migration bookkeeping).  The
    :meth:`begin_cpu_batch` / :meth:`end_cpu_batch` pair lets the caller
    coalesce them into a single locked charge per operation: while a
    batch is open on the current thread, CPU charges accumulate in a
    thread-local pending list and commit when the outermost batch
    closes.  The commit replays each charge in order, so totals,
    operation tallies, and float rounding are bit-for-bit identical to
    unbatched charging; only the number of lock acquisitions shrinks.
    """

    CPU = "cpu"

    def __init__(self) -> None:
        self._usage: dict[str, ResourceUsage] = {}
        self._lock = threading.Lock()
        self._cpu_batch = _CpuBatch()
        #: Running sum of every committed charge.  Kept alongside the
        #: per-resource tallies so observability can read "simulated
        #: time so far" with a single attribute load on the hot path.
        self._total_ns = 0.0

    def begin_cpu_batch(self) -> None:
        """Open a per-operation CPU batch on the current thread."""
        self._cpu_batch.depth += 1

    def end_cpu_batch(self) -> None:
        """Close the batch; the outermost close commits the pending charges."""
        batch = self._cpu_batch
        batch.depth -= 1
        if batch.depth <= 0:
            batch.depth = 0
            pending = batch.pending
            if pending:
                batch.pending = []
                with self._lock:
                    usage = self._usage.get(self.CPU)
                    if usage is None:
                        usage = ResourceUsage()
                        self._usage[self.CPU] = usage
                    for service_ns in pending:
                        usage.charge(service_ns)
                        self._total_ns += service_ns

    def charge(self, resource: str, service_ns: float, nbytes: int = 0) -> None:
        """Charge ``service_ns`` of busy time against ``resource``."""
        if service_ns < 0:
            raise ValueError("service time must be non-negative")
        if resource == self.CPU:
            batch = self._cpu_batch
            if batch.depth:
                if self.CPU not in self._usage:
                    # Reserve the slot now: makespan_ns sums resources
                    # in dict insertion order, so the cpu slot must
                    # appear where an unbatched run would have created
                    # it for the float rounding to stay identical.
                    with self._lock:
                        self._usage.setdefault(self.CPU, ResourceUsage())
                batch.pending.append(service_ns)
                return
        self._commit(resource, service_ns, nbytes)

    def _commit(self, resource: str, service_ns: float, nbytes: int) -> None:
        with self._lock:
            usage = self._usage.get(resource)
            if usage is None:
                usage = ResourceUsage()
                self._usage[resource] = usage
            usage.charge(service_ns, nbytes)
            self._total_ns += service_ns

    @property
    def total_ns(self) -> float:
        """Total committed service demand — the run's simulated timeline.

        A single attribute read (no lock, no dict walk): the
        :class:`~repro.obs.hub.MetricsHub` brackets every op's charge
        with two of these reads, so it must stay O(1).  Charges still
        pending in an open CPU batch are not yet visible.
        """
        return self._total_ns

    def usage(self, resource: str) -> ResourceUsage:
        """Current usage for ``resource`` (zeroes if never charged)."""
        with self._lock:
            found = self._usage.get(resource)
            if found is None:
                return ResourceUsage()
            return ResourceUsage(found.busy_ns, found.operations, found.bytes_moved)

    def resources(self) -> list[str]:
        with self._lock:
            return sorted(self._usage)

    def snapshot(self) -> dict[str, ResourceUsage]:
        """A point-in-time copy of all resource usage."""
        with self._lock:
            return {
                key: ResourceUsage(u.busy_ns, u.operations, u.bytes_moved)
                for key, u in self._usage.items()
            }

    def reset(self) -> None:
        # Resets happen between operations, so no batch should be open;
        # dropping the calling thread's pending charges keeps a stray
        # mid-batch reset from leaking pre-reset demand past it.
        self._cpu_batch.pending.clear()
        with self._lock:
            self._usage.clear()
            self._total_ns = 0.0

    # ------------------------------------------------------------------
    # Makespan / throughput analysis
    # ------------------------------------------------------------------
    def makespan_ns(self, workers: int = 1) -> float:
        """Simulated completion time of the accumulated work.

        The batch cannot finish faster than (a) the per-worker share of the
        total serialised demand, nor (b) the busy time of the most loaded
        shared device.  CPU demand divides across workers; device busy
        times do not (bandwidth figures in the specs are already aggregate
        device bandwidth).
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        snapshot = self.snapshot()
        total_ns = sum(u.busy_ns for u in snapshot.values())
        per_worker = total_ns / workers
        device_bound = max(
            (u.busy_ns for key, u in snapshot.items() if key != self.CPU),
            default=0.0,
        )
        return max(per_worker, device_bound)

    def throughput(self, operations: int, workers: int = 1) -> float:
        """Operations per simulated second for the accumulated work."""
        if operations <= 0:
            return 0.0
        span = self.makespan_ns(workers)
        if span <= 0:
            return float("inf")
        return operations / (span / 1e9)

    def delta_since(self, baseline: dict[str, ResourceUsage]) -> "CostAccumulator":
        """A new accumulator holding usage accrued since ``baseline``.

        ``baseline`` should be a previous :meth:`snapshot` of this
        accumulator.  Used by epoch-based tuning to measure each epoch
        independently.
        """
        delta = CostAccumulator()
        for key, usage in self.snapshot().items():
            base = baseline.get(key, ResourceUsage())
            delta._usage[key] = ResourceUsage(
                busy_ns=usage.busy_ns - base.busy_ns,
                operations=usage.operations - base.operations,
                bytes_moved=usage.bytes_moved - base.bytes_moved,
            )
            delta._total_ns += delta._usage[key].busy_ns
        return delta
