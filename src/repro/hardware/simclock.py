"""Simulated clock and per-resource busy-time accounting.

The reproduction replaces wall-clock measurement with a discrete cost
model: every device access and every unit of CPU work charges simulated
nanoseconds to an accumulator.  A bottleneck (saturation) analysis then
converts the accumulated service demands into a simulated makespan for a
given number of workers, from which the benchmark harness derives
throughput.

This is the standard operational-analysis bound: with ``W`` closed-loop
workers the makespan of a batch of operations is at least the total
serialised work divided by ``W`` and at least the busy time of the most
loaded shared resource.  The paper's multi-threaded results are
device-bound (SSD or NVM bandwidth), which this model captures.

Accounting is fixed-point: every charge is quantised to integer units of
``2**-FP_SHIFT`` nanoseconds at the moment it is made, and all
accumulation is integer addition.  Integer addition is associative, so a
batched charge (one reduction over a whole array of per-op costs) lands
on exactly the same total as the equivalent sequence of per-op charges —
the property the columnar batch path's byte-identity guarantee rests on.
Floats only appear at the read-out edge (``busy_ns``, ``total_ns``), and
those conversions are exact as long as a single accumulator stays below
2**53 fixed-point units (≈ 8.6 simulated seconds at the default shift).
"""

from __future__ import annotations

import threading

from ..np_compat import np

#: Fixed-point resolution: charges are integer multiples of 2**-20 ns.
FP_SHIFT = 20
FP_SCALE = 1 << FP_SHIFT


def to_fp(service_ns: float) -> int:
    """Quantise nanoseconds to fixed-point units (round half to even).

    ``round()`` on a float and :func:`numpy.rint` both round half to
    even, so scalar and vectorised quantisation agree element for
    element — another identity the batch path depends on.
    """
    return round(service_ns * FP_SCALE)


def to_fp_array(service_ns_array):
    """Vectorised :func:`to_fp` over a numpy array (int64 result)."""
    return np.rint(
        np.asarray(service_ns_array, dtype=np.float64) * FP_SCALE
    ).astype(np.int64)


def fp_to_ns(fp: int) -> float:
    """Fixed-point units back to (float) nanoseconds."""
    return fp / FP_SCALE


class SimClock:
    """A monotonically advancing simulated clock in nanoseconds.

    The clock is advanced explicitly (e.g. by the cost model or by the
    adaptive controller's epoch logic).  It is thread-safe so that the
    genuinely multi-threaded tests can share one clock.  Time is stored
    in fixed-point units so repeated advances cannot drift.
    """

    def __init__(self, start_ns: int = 0) -> None:
        self._now_fp = to_fp(start_ns)
        self._lock = threading.Lock()

    @property
    def now_ns(self) -> float:
        return self._now_fp / FP_SCALE

    @property
    def now_s(self) -> float:
        return self._now_fp / FP_SCALE / 1e9

    def advance(self, delta_ns: float) -> float:
        """Advance the clock by ``delta_ns`` and return the new time."""
        if delta_ns < 0:
            raise ValueError("cannot advance the clock backwards")
        with self._lock:
            self._now_fp += to_fp(delta_ns)
            return self._now_fp / FP_SCALE

    def advance_to(self, target_ns: float) -> float:
        """Advance the clock to ``target_ns`` if that is in the future.

        Unlike :meth:`advance`, a target in the past is a no-op rather
        than an error — epoch samplers race benignly for the same tick.
        """
        target_fp = to_fp(target_ns)
        with self._lock:
            if target_fp > self._now_fp:
                self._now_fp = target_fp
            return self._now_fp / FP_SCALE

    def reset(self) -> None:
        with self._lock:
            self._now_fp = 0


class ResourceUsage:
    """Accumulated service demand for a single shared resource.

    Busy time is held as an integer fixed-point tally (``busy_fp``);
    ``busy_ns`` is a derived float view for reports and JSON.
    """

    __slots__ = ("busy_fp", "operations", "bytes_moved")

    def __init__(
        self,
        busy_ns: float = 0.0,
        operations: int = 0,
        bytes_moved: int = 0,
        *,
        busy_fp: int | None = None,
    ) -> None:
        self.busy_fp = to_fp(busy_ns) if busy_fp is None else busy_fp
        self.operations = operations
        self.bytes_moved = bytes_moved

    @property
    def busy_ns(self) -> float:
        return self.busy_fp / FP_SCALE

    def charge(self, service_ns: float, nbytes: int = 0) -> None:
        self.busy_fp += to_fp(service_ns)
        self.operations += 1
        self.bytes_moved += nbytes

    def charge_fp(self, service_fp: int, nbytes: int = 0, operations: int = 1) -> None:
        """Charge an already-quantised amount, optionally for many ops."""
        self.busy_fp += service_fp
        self.operations += operations
        self.bytes_moved += nbytes

    def as_dict(self) -> dict[str, float | int]:
        """JSON-able form for run results and bench reports."""
        return {
            "busy_ns": self.busy_fp / FP_SCALE,
            "operations": self.operations,
            "bytes_moved": self.bytes_moved,
        }

    def merged(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            busy_fp=self.busy_fp + other.busy_fp,
            operations=self.operations + other.operations,
            bytes_moved=self.bytes_moved + other.bytes_moved,
        )

    def copy(self) -> "ResourceUsage":
        return ResourceUsage(
            busy_fp=self.busy_fp,
            operations=self.operations,
            bytes_moved=self.bytes_moved,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceUsage):
            return NotImplemented
        return (
            self.busy_fp == other.busy_fp
            and self.operations == other.operations
            and self.bytes_moved == other.bytes_moved
        )

    def __repr__(self) -> str:
        return (
            f"ResourceUsage(busy_ns={self.busy_ns!r}, "
            f"operations={self.operations!r}, bytes_moved={self.bytes_moved!r})"
        )


class _CpuBatch(threading.local):
    """Per-thread deferred CPU demand for one logical operation.

    ``threading.local`` keeps concurrent workers' pending charges apart
    without any locking; ``__init__`` runs once per thread.  Charges are
    quantised on entry and kept as fixed-point integers, so committing
    them in any order lands on the unbatched totals exactly.
    """

    def __init__(self) -> None:
        self.depth = 0
        self.pending: list[int] = []


class CostAccumulator:
    """Collects per-resource service demands for a batch of operations.

    Resources are identified by string keys: ``"cpu"`` plus one key per
    device channel (``"dram"``, ``"nvm"``, ``"ssd"``).  CPU demand is
    divisible across workers; device demand saturates at the device's
    aggregate bandwidth regardless of worker count.

    One buffer-manager operation makes several small CPU charges (hash
    lookup, device access latencies, migration bookkeeping).  The
    :meth:`begin_cpu_batch` / :meth:`end_cpu_batch` pair lets the caller
    coalesce them into a single locked charge per operation: while a
    batch is open on the current thread, CPU charges accumulate in a
    thread-local pending list and commit when the outermost batch
    closes.  All tallies are fixed-point integers, so batched and
    per-op charge orders reduce to identical totals by construction.
    """

    CPU = "cpu"

    def __init__(self) -> None:
        self._usage: dict[str, ResourceUsage] = {}
        self._lock = threading.Lock()
        self._cpu_batch = _CpuBatch()
        #: Running sum of every committed charge.  Kept alongside the
        #: per-resource tallies so observability can read "simulated
        #: time so far" with a single attribute load on the hot path.
        self._total_fp = 0

    def begin_cpu_batch(self) -> None:
        """Open a per-operation CPU batch on the current thread."""
        self._cpu_batch.depth += 1

    def end_cpu_batch(self) -> None:
        """Close the batch; the outermost close commits the pending charges."""
        batch = self._cpu_batch
        batch.depth -= 1
        if batch.depth <= 0:
            batch.depth = 0
            pending = batch.pending
            if pending:
                batch.pending = []
                total_fp = 0
                for service_fp in pending:
                    total_fp += service_fp
                with self._lock:
                    usage = self._usage.get(self.CPU)
                    if usage is None:
                        usage = ResourceUsage()
                        self._usage[self.CPU] = usage
                    usage.charge_fp(total_fp, operations=len(pending))
                    self._total_fp += total_fp

    def charge(self, resource: str, service_ns: float, nbytes: int = 0) -> None:
        """Charge ``service_ns`` of busy time against ``resource``."""
        if service_ns < 0:
            raise ValueError("service time must be non-negative")
        if resource == self.CPU:
            batch = self._cpu_batch
            if batch.depth:
                if self.CPU not in self._usage:
                    # Reserve the slot now: makespan_ns sums resources in
                    # dict insertion order, so the cpu slot must appear
                    # where an unbatched run would have created it.
                    self.reserve(self.CPU)
                batch.pending.append(to_fp(service_ns))
                return
        self._commit_fp(resource, to_fp(service_ns), 1, nbytes)

    def reserve(self, resource: str) -> None:
        """Ensure ``resource`` has a slot without charging anything.

        The batch path uses this to reproduce the dict insertion order a
        per-op run would have produced (the CPU slot appears before the
        first device slot because the lookup charge reserves it).
        """
        if resource not in self._usage:
            with self._lock:
                self._usage.setdefault(resource, ResourceUsage())

    def charge_batch(self, resource: str, service_ns_array, nbytes_array=None) -> None:
        """Columnar charge: one locked reduction over per-op cost arrays.

        ``service_ns_array`` is quantised element-wise exactly as the
        equivalent sequence of :meth:`charge` calls would have been, then
        summed as integers — the result is identical to charging each
        element individually, in any order.
        """
        if np is not None and isinstance(service_ns_array, np.ndarray):
            fp_array = to_fp_array(service_ns_array)
            if np.any(fp_array < 0):
                raise ValueError("service time must be non-negative")
            total_fp = int(fp_array.sum())
            count = int(fp_array.size)
        else:
            total_fp = 0
            count = 0
            for service_ns in service_ns_array:
                if service_ns < 0:
                    raise ValueError("service time must be non-negative")
                total_fp += to_fp(service_ns)
                count += 1
        nbytes = 0
        if nbytes_array is not None:
            nbytes = int(
                nbytes_array.sum()
                if np is not None and isinstance(nbytes_array, np.ndarray)
                else sum(nbytes_array)
            )
        self._commit_fp(resource, total_fp, count, nbytes)

    def charge_batch_fp(
        self, resource: str, total_fp: int, operations: int, nbytes: int = 0
    ) -> None:
        """Charge a pre-quantised, pre-reduced batch total."""
        if total_fp < 0:
            raise ValueError("service time must be non-negative")
        self._commit_fp(resource, total_fp, operations, nbytes)

    def _commit_fp(
        self, resource: str, service_fp: int, operations: int, nbytes: int
    ) -> None:
        with self._lock:
            usage = self._usage.get(resource)
            if usage is None:
                usage = ResourceUsage()
                self._usage[resource] = usage
            usage.charge_fp(service_fp, nbytes, operations)
            self._total_fp += service_fp

    @property
    def total_ns(self) -> float:
        """Total committed service demand — the run's simulated timeline.

        A single attribute read (no lock, no dict walk): the
        :class:`~repro.obs.hub.MetricsHub` brackets every op's charge
        with two of these reads, so it must stay O(1).  Charges still
        pending in an open CPU batch are not yet visible.
        """
        return self._total_fp / FP_SCALE

    @property
    def total_fp(self) -> int:
        """Fixed-point view of :attr:`total_ns` (exact, no rounding)."""
        return self._total_fp

    def usage(self, resource: str) -> ResourceUsage:
        """Current usage for ``resource`` (zeroes if never charged)."""
        with self._lock:
            found = self._usage.get(resource)
            if found is None:
                return ResourceUsage()
            return found.copy()

    def resources(self) -> list[str]:
        with self._lock:
            return sorted(self._usage)

    def snapshot(self) -> dict[str, ResourceUsage]:
        """A point-in-time copy of all resource usage."""
        with self._lock:
            return {key: u.copy() for key, u in self._usage.items()}

    def reset(self) -> None:
        # Resets happen between operations, so no batch should be open;
        # dropping the calling thread's pending charges keeps a stray
        # mid-batch reset from leaking pre-reset demand past it.
        self._cpu_batch.pending.clear()
        with self._lock:
            self._usage.clear()
            self._total_fp = 0

    # ------------------------------------------------------------------
    # Makespan / throughput analysis
    # ------------------------------------------------------------------
    def makespan_ns(self, workers: int = 1) -> float:
        """Simulated completion time of the accumulated work.

        The batch cannot finish faster than (a) the per-worker share of the
        total serialised demand, nor (b) the busy time of the most loaded
        shared device.  CPU demand divides across workers; device busy
        times do not (bandwidth figures in the specs are already aggregate
        device bandwidth).
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        snapshot = self.snapshot()
        total_fp = sum(u.busy_fp for u in snapshot.values())
        per_worker = total_fp / FP_SCALE / workers
        device_bound_fp = max(
            (u.busy_fp for key, u in snapshot.items() if key != self.CPU),
            default=0,
        )
        return max(per_worker, device_bound_fp / FP_SCALE)

    def throughput(self, operations: int, workers: int = 1) -> float:
        """Operations per simulated second for the accumulated work."""
        if operations <= 0:
            return 0.0
        span = self.makespan_ns(workers)
        if span <= 0:
            return float("inf")
        return operations / (span / 1e9)

    def delta_since(self, baseline: dict[str, ResourceUsage]) -> "CostAccumulator":
        """A new accumulator holding usage accrued since ``baseline``.

        ``baseline`` should be a previous :meth:`snapshot` of this
        accumulator.  Used by epoch-based tuning to measure each epoch
        independently.
        """
        delta = CostAccumulator()
        for key, usage in self.snapshot().items():
            base = baseline.get(key, ResourceUsage())
            delta._usage[key] = ResourceUsage(
                busy_fp=usage.busy_fp - base.busy_fp,
                operations=usage.operations - base.operations,
                bytes_moved=usage.bytes_moved - base.bytes_moved,
            )
            delta._total_fp += delta._usage[key].busy_fp
        return delta
