"""Simulated storage hardware: device specs, cost model, memory mode.

This package is the substitute for the paper's Optane evaluation platform.
It models DRAM, Optane DC PMMs, and an Optane SSD with the latency,
bandwidth, media-granularity, price, and endurance characteristics of
Table 1, and converts access traces into simulated throughput via a
multi-worker saturation analysis.
"""

from .cost_model import DEFAULT_CPU_COSTS, CpuCosts, StorageHierarchy
from .device import Device, DeviceCounters, cpu_charge
from .memory_mode import MemoryModeDevice, MemoryModeStats
from .pricing import (
    HierarchyShape,
    equi_cost_nvm_gb,
    hierarchy_cost,
    performance_per_price,
    spec_for,
)
from .simclock import CostAccumulator, ResourceUsage, SimClock
from .specs import (
    BUFFER_TIER_ORDER,
    CACHE_LINE_SIZE,
    CACHE_LINES_PER_PAGE,
    CXL_SPEC,
    DEFAULT_SCALE,
    DEFAULT_SPECS,
    DRAM_SPEC,
    GIB,
    KIB,
    MIB,
    NVM_MEDIA_GRANULARITY,
    NVM_SPEC,
    PAGE_SIZE,
    SSD_SPEC,
    TIER_ORDER,
    Addressability,
    DeviceSpec,
    SimulationScale,
    Tier,
)

__all__ = [
    "Addressability",
    "BUFFER_TIER_ORDER",
    "CACHE_LINES_PER_PAGE",
    "CACHE_LINE_SIZE",
    "CXL_SPEC",
    "CostAccumulator",
    "CpuCosts",
    "DEFAULT_CPU_COSTS",
    "DEFAULT_SCALE",
    "DEFAULT_SPECS",
    "DRAM_SPEC",
    "Device",
    "DeviceCounters",
    "DeviceSpec",
    "GIB",
    "HierarchyShape",
    "KIB",
    "MIB",
    "MemoryModeDevice",
    "MemoryModeStats",
    "NVM_MEDIA_GRANULARITY",
    "NVM_SPEC",
    "PAGE_SIZE",
    "ResourceUsage",
    "SSD_SPEC",
    "SimClock",
    "SimulationScale",
    "StorageHierarchy",
    "TIER_ORDER",
    "Tier",
    "cpu_charge",
    "equi_cost_nvm_gb",
    "hierarchy_cost",
    "performance_per_price",
    "spec_for",
]
