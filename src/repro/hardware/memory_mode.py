"""Memory-mode emulation: DRAM as a direct-mapped write-back cache for NVM.

When Optane PMMs run in *memory mode* (§2.2 of the paper) the platform's
DRAM becomes a hardware-managed, direct-mapped, write-back L4 cache in
front of the PMMs, and software sees a single large volatile memory.  The
DBMS cannot exploit NVM persistence in this mode, so dirty pages must
still be flushed to SSD.

:class:`MemoryModeDevice` models this with a page-granular direct-mapped
cache: an access whose page maps to a matching cache slot is served at
DRAM cost; a miss is served at NVM cost plus a write-back of the evicted
slot when dirty.  This captures the behaviour Fig. 5 depends on — a
memory-mode DRAM-SSD hierarchy behaves like DRAM while the working set
fits the DRAM cache, and like (volatile) NVM beyond it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from .device import Device, DeviceCounters
from .simclock import CostAccumulator
from .specs import DRAM_SPEC, NVM_SPEC, PAGE_SIZE, DeviceSpec, Tier


@dataclass
class MemoryModeStats:
    """Hit/miss statistics of the hardware-managed DRAM cache."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses


class MemoryModeDevice:
    """A volatile memory device backed by NVM with a DRAM L4 cache.

    The device exposes the same ``read``/``write`` costing interface as
    :class:`~repro.hardware.device.Device`, plus page-tagged variants used
    by the buffer manager so that the direct-mapped cache can track which
    page occupies each cache slot.
    """

    def __init__(
        self,
        dram_capacity_bytes: int,
        nvm_capacity_bytes: int,
        cost: CostAccumulator | None = None,
        dram_spec: DeviceSpec = DRAM_SPEC,
        nvm_spec: DeviceSpec = NVM_SPEC,
        page_size: int = PAGE_SIZE,
    ) -> None:
        if dram_capacity_bytes <= 0:
            raise ValueError("dram_capacity_bytes must be positive")
        if nvm_capacity_bytes < dram_capacity_bytes:
            raise ValueError(
                "memory mode requires NVM capacity >= DRAM capacity "
                "(DRAM is a cache for NVM)"
            )
        self.cost = cost if cost is not None else CostAccumulator()
        self.page_size = page_size
        self._dram = Device(dram_spec, dram_capacity_bytes, self.cost)
        self._nvm = Device(nvm_spec, nvm_capacity_bytes, self.cost)
        self._num_slots = max(1, dram_capacity_bytes // page_size)
        # slot -> (page_id, dirty); direct mapped, so each page has one slot.
        self._slots: dict[int, tuple[int, bool]] = {}
        self.stats = MemoryModeStats()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def tier(self) -> Tier:
        # Software sees one big volatile memory; it occupies the DRAM tier
        # slot of a two-tier hierarchy.
        return Tier.DRAM

    @property
    def spec(self) -> DeviceSpec:
        return self._nvm.spec

    @property
    def capacity_bytes(self) -> int:
        """Usable capacity equals the NVM capacity (DRAM is just a cache)."""
        return self._nvm.capacity_bytes or 0

    def capacity_pages(self, page_size: int | None = None) -> int:
        return self.capacity_bytes // (page_size or self.page_size)

    # ------------------------------------------------------------------
    def _touch(self, page_id: int, dirty: bool) -> bool:
        """Update the direct-mapped cache; return True on a DRAM hit."""
        slot = page_id % self._num_slots
        with self._lock:
            occupant = self._slots.get(slot)
            if occupant is not None and occupant[0] == page_id:
                self._slots[slot] = (page_id, occupant[1] or dirty)
                self.stats.hits += 1
                return True
            self.stats.misses += 1
            if occupant is not None and occupant[1]:
                self.stats.writebacks += 1
                needs_writeback = True
            else:
                needs_writeback = False
            self._slots[slot] = (page_id, dirty)
        if needs_writeback:
            self._nvm.write(self.page_size)
        return False

    def read_page(self, page_id: int, nbytes: int, sequential: bool = False) -> float:
        """Read ``nbytes`` from ``page_id``; DRAM cost on a cache hit."""
        if self._touch(page_id, dirty=False):
            return self._dram.read(nbytes, sequential)
        # Miss: the cache line fill streams the page from NVM.
        return self._nvm.read(nbytes, sequential)

    def write_page(self, page_id: int, nbytes: int, sequential: bool = False) -> float:
        """Write ``nbytes`` to ``page_id`` (write-back: DRAM on a hit)."""
        if self._touch(page_id, dirty=True):
            return self._dram.write(nbytes, sequential)
        return self._nvm.write(nbytes, sequential)

    # Plain Device-compatible entry points (no page identity — treated as
    # streaming accesses that always miss the cache).
    def read(self, nbytes: int, sequential: bool = False) -> float:
        self.stats.misses += 1
        return self._nvm.read(nbytes, sequential)

    def write(self, nbytes: int, sequential: bool = False) -> float:
        self.stats.misses += 1
        return self._nvm.write(nbytes, sequential)

    def persist_barrier(self) -> float:
        # Memory mode is volatile: persistence is not available, so a
        # barrier is a no-op (the DBMS must flush to SSD instead).
        return 0.0

    # ------------------------------------------------------------------
    def snapshot_counters(self) -> DeviceCounters:
        dram = self._dram.snapshot_counters()
        nvm = self._nvm.snapshot_counters()
        merged = DeviceCounters()
        for field_name in vars(merged):
            setattr(
                merged,
                field_name,
                getattr(dram, field_name) + getattr(nvm, field_name),
            )
        return merged

    def reset_counters(self) -> None:
        self._dram.reset_counters()
        self._nvm.reset_counters()
        with self._lock:
            self.stats = MemoryModeStats()
