"""CPU cost constants and hierarchy construction.

This module assembles :class:`~repro.hardware.device.Device` instances for
a :class:`~repro.hardware.pricing.HierarchyShape` and centralises the CPU
cost constants used by the buffer manager.  The constants are calibrated
so that single-worker YCSB-RO throughput on an all-DRAM-resident working
set lands in the few-million-ops/s range the paper reports (Fig. 6a),
while keeping every cost a simple, inspectable number.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import Device
from .memory_mode import MemoryModeDevice
from .pricing import HierarchyShape, hierarchy_cost, spec_for
from .simclock import CostAccumulator, SimClock
from .specs import (
    DEFAULT_SCALE,
    DEFAULT_SPECS,
    PAGE_SIZE,
    DeviceSpec,
    SimulationScale,
    Tier,
)


@dataclass(frozen=True)
class CpuCosts:
    """Per-operation CPU service demands in nanoseconds.

    These model the computational overheads §5.2 of the paper calls out:
    mapping-table lookups, latching, replacement-policy bookkeeping, and
    the extra work of the HyMem page layouts.
    """

    #: Hash lookup + shared-descriptor latch per buffer request.
    lookup_ns: float = 120.0
    #: CLOCK hand advance + bitmap update per eviction decision.
    eviction_ns: float = 90.0
    #: Fixed overhead of starting any tier-to-tier migration (latching).
    migration_ns: float = 150.0
    #: Bitmask bookkeeping per cache-line-grained load.
    cacheline_bookkeeping_ns: float = 25.0
    #: Slot search/sort overhead per mini-page access (§6.5: sorting the
    #: slots is what erodes the mini-page benefit at larger loading units).
    minipage_slot_ns: float = 45.0
    #: Index traversal per tuple operation (B+Tree descent).
    index_ns: float = 220.0
    #: Log-record construction + NVM log-buffer append per update.
    logging_ns: float = 110.0
    #: CPU cost of copying page data between buffers, per KiB.  A 16 KB
    #: page migration moves the data through the CPU caches (~60 ns/KiB
    #: at a typical single-core memcpy rate), which is the dominant cost
    #: eager migration policies pay and fine-grained loading avoids.
    copy_ns_per_kb: float = 60.0

    def copy_ns(self, nbytes: int) -> float:
        """CPU time to copy ``nbytes`` between buffers."""
        return self.copy_ns_per_kb * nbytes / 1024.0


#: Default CPU calibration shared by benchmarks.
DEFAULT_CPU_COSTS = CpuCosts()


class StorageHierarchy:
    """The set of simulated devices for one experiment configuration.

    All devices share one :class:`CostAccumulator` and one
    :class:`SimClock`, so the harness can convert a run's accumulated
    demands into a simulated makespan/throughput.

    Parameters
    ----------
    shape:
        Per-tier capacities in paper-scale gigabytes.
    scale:
        Mapping from paper gigabytes to simulated pages.
    memory_mode:
        When true, the DRAM capacity is used as a hardware cache in front
        of the NVM capacity and exposed as a single volatile device in the
        DRAM slot (Fig. 5's DRAM-SSD memory-mode configuration).
    """

    def __init__(
        self,
        shape: HierarchyShape,
        scale: SimulationScale = DEFAULT_SCALE,
        specs: dict[Tier, DeviceSpec] | None = None,
        cpu_costs: CpuCosts = DEFAULT_CPU_COSTS,
        memory_mode: bool = False,
        page_size: int = PAGE_SIZE,
    ) -> None:
        self.shape = shape
        self.scale = scale
        self.specs = dict(specs or DEFAULT_SPECS)
        self.cpu_costs = cpu_costs
        self.page_size = page_size
        self.memory_mode = memory_mode
        self.cost = CostAccumulator()
        self.clock = SimClock()
        self.devices: dict[Tier, Device | MemoryModeDevice] = {}
        self._build_devices()

    def _capacity_bytes(self, gigabytes: float) -> int:
        return self.scale.pages(gigabytes) * self.page_size

    def _build_devices(self) -> None:
        if self.memory_mode:
            if self.shape.dram_gb <= 0 or self.shape.nvm_gb <= 0:
                raise ValueError("memory mode needs both DRAM and NVM capacity")
            self.devices[Tier.DRAM] = MemoryModeDevice(
                dram_capacity_bytes=self._capacity_bytes(self.shape.dram_gb),
                nvm_capacity_bytes=self._capacity_bytes(self.shape.nvm_gb),
                cost=self.cost,
                dram_spec=self.specs[Tier.DRAM],
                nvm_spec=self.specs[Tier.NVM],
                page_size=self.page_size,
            )
        else:
            for tier in (Tier.DRAM, Tier.CXL, Tier.NVM):
                capacity_gb = self.shape.capacity_gb(tier)
                if capacity_gb > 0:
                    self.devices[tier] = Device(
                        spec_for(tier, self.specs),
                        self._capacity_bytes(capacity_gb),
                        self.cost,
                    )
        if self.shape.ssd_gb > 0:
            self.devices[Tier.SSD] = Device(
                spec_for(Tier.SSD, self.specs),
                self._capacity_bytes(self.shape.ssd_gb),
                self.cost,
            )

    # ------------------------------------------------------------------
    def device(self, tier: Tier) -> Device | MemoryModeDevice:
        try:
            return self.devices[tier]
        except KeyError:
            raise KeyError(f"hierarchy {self.shape.label} has no {tier.name} tier") from None

    def has_tier(self, tier: Tier) -> bool:
        return tier in self.devices

    def buffer_capacity_pages(self, tier: Tier) -> int:
        """Number of pages the buffer on ``tier`` can hold."""
        device = self.device(tier)
        pages = device.capacity_pages(self.page_size)
        if pages is None:
            raise ValueError(f"{tier.name} device has unbounded capacity")
        return pages

    def charge_cpu(self, service_ns: float) -> None:
        self.cost.charge(CostAccumulator.CPU, service_ns)

    def charge_cpu_batch(self, service_ns_array) -> None:
        """Columnar CPU charge: one reduction over per-op demands."""
        self.cost.charge_batch(CostAccumulator.CPU, service_ns_array)

    def charge_device_batch(
        self,
        tier: Tier,
        nbytes,
        count: int | None = None,
        is_write: bool = False,
        sequential: bool = False,
    ):
        """Per-device charge vector for a batch of uniform or sized accesses.

        Delegates to the device's :meth:`~repro.hardware.device.Device.read_batch`
        / :meth:`~repro.hardware.device.Device.write_batch`; returns the
        ``(transfer_fp, latency_fp)`` charge vector so callers can
        reconstruct per-op latencies without re-deriving device constants.
        """
        device = self.device(tier)
        if is_write:
            return device.write_batch(nbytes, count=count, sequential=sequential)
        return device.read_batch(nbytes, count=count, sequential=sequential)

    def begin_op(self) -> None:
        """Start one logical operation: CPU charges batch until
        :meth:`end_op`, collapsing the per-probe accumulator traffic
        (lookup cost, device access latencies, migration bookkeeping)
        into a single charge.  Nesting is safe; the outermost pair wins.
        """
        self.cost.begin_cpu_batch()

    def end_op(self) -> None:
        """Commit the batched CPU demand of the current operation."""
        self.cost.end_cpu_batch()

    def dollar_cost(self) -> float:
        return hierarchy_cost(self.shape, self.specs)

    def throughput(self, operations: int, workers: int = 1) -> float:
        return self.cost.throughput(operations, workers)

    def reset_accounting(self) -> None:
        """Clear cost and traffic counters (e.g. after buffer warm-up)."""
        self.cost.reset()
        self.clock.reset()
        for device in self.devices.values():
            device.reset_counters()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = " memory-mode" if self.memory_mode else ""
        return f"StorageHierarchy({self.shape.label}{mode})"
