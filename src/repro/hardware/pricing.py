"""Storage-hierarchy pricing.

§6.6 of the paper compares multi-tier hierarchies by performance/price,
with device prices taken from Table 1 ($/GB).  This module computes the
cost of a hierarchy from per-tier capacities.
"""

from __future__ import annotations

from dataclasses import dataclass

from .specs import DEFAULT_SPECS, DeviceSpec, Tier


@dataclass(frozen=True)
class HierarchyShape:
    """Per-tier capacities, in (paper-scale) gigabytes."""

    dram_gb: float = 0.0
    nvm_gb: float = 0.0
    ssd_gb: float = 0.0

    def __post_init__(self) -> None:
        for name in ("dram_gb", "nvm_gb", "ssd_gb"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def tiers(self) -> tuple[Tier, ...]:
        """Tiers with non-zero capacity, top-down."""
        present = []
        if self.dram_gb > 0:
            present.append(Tier.DRAM)
        if self.nvm_gb > 0:
            present.append(Tier.NVM)
        if self.ssd_gb > 0:
            present.append(Tier.SSD)
        return tuple(present)

    @property
    def label(self) -> str:
        """A short human-readable name like ``DRAM-NVM-SSD``."""
        return "-".join(t.name for t in self.tiers) or "EMPTY"

    def capacity_gb(self, tier: Tier) -> float:
        return {
            Tier.DRAM: self.dram_gb,
            Tier.NVM: self.nvm_gb,
            Tier.SSD: self.ssd_gb,
        }[tier]


def hierarchy_cost(
    shape: HierarchyShape,
    specs: dict[Tier, DeviceSpec] | None = None,
) -> float:
    """Total device cost of ``shape`` in dollars."""
    table = specs or DEFAULT_SPECS
    return sum(
        shape.capacity_gb(tier) * table[tier].price_per_gb
        for tier in (Tier.DRAM, Tier.NVM, Tier.SSD)
    )


def performance_per_price(throughput_ops: float, cost_dollars: float) -> float:
    """Operations per second per dollar (the paper's T/C metric)."""
    if cost_dollars <= 0:
        raise ValueError("hierarchy cost must be positive")
    return throughput_ops / cost_dollars


def equi_cost_nvm_gb(dram_gb: float, specs: dict[Tier, DeviceSpec] | None = None) -> float:
    """NVM capacity purchasable for the price of ``dram_gb`` of DRAM.

    Used by the Fig. 5 experiment to build equi-cost DRAM-SSD and NVM-SSD
    hierarchies (the paper's 140 GB DRAM vs 340 GB NVM configurations have
    roughly this ratio).
    """
    table = specs or DEFAULT_SPECS
    return dram_gb * table[Tier.DRAM].price_per_gb / table[Tier.NVM].price_per_gb
