"""Storage-hierarchy pricing.

§6.6 of the paper compares multi-tier hierarchies by performance/price,
with device prices taken from Table 1 ($/GB).  This module computes the
cost of a hierarchy from per-tier capacities.
"""

from __future__ import annotations

from dataclasses import dataclass

from .specs import CXL_SPEC, DEFAULT_SPECS, TIER_ORDER, DeviceSpec, Tier


@dataclass(frozen=True)
class HierarchyShape:
    """Per-tier capacities, in (paper-scale) gigabytes.

    ``cxl_gb`` adds an optional CXL memory-expander tier between DRAM and
    NVM; the paper's three-tier configurations simply leave it at zero.
    (It is deliberately the last field so positional construction stays
    ``HierarchyShape(dram_gb, nvm_gb, ssd_gb)``.)
    """

    dram_gb: float = 0.0
    nvm_gb: float = 0.0
    ssd_gb: float = 0.0
    cxl_gb: float = 0.0

    def __post_init__(self) -> None:
        for name in ("dram_gb", "nvm_gb", "ssd_gb", "cxl_gb"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def tiers(self) -> tuple[Tier, ...]:
        """Tiers with non-zero capacity, top-down."""
        return tuple(t for t in TIER_ORDER if self.capacity_gb(t) > 0)

    @property
    def label(self) -> str:
        """A short human-readable name like ``DRAM-NVM-SSD``."""
        return "-".join(t.name for t in self.tiers) or "EMPTY"

    def capacity_gb(self, tier: Tier) -> float:
        return {
            Tier.DRAM: self.dram_gb,
            Tier.CXL: self.cxl_gb,
            Tier.NVM: self.nvm_gb,
            Tier.SSD: self.ssd_gb,
        }[tier]


def spec_for(tier: Tier, specs: dict[Tier, DeviceSpec] | None = None) -> DeviceSpec:
    """Resolve the spec for ``tier``; CXL falls back to :data:`CXL_SPEC`.

    ``DEFAULT_SPECS`` intentionally stays the paper's three Table-1 rows,
    so the optional CXL tier resolves through its own default spec.
    """
    table = specs or DEFAULT_SPECS
    if tier in table:
        return table[tier]
    if tier is Tier.CXL:
        return CXL_SPEC
    raise KeyError(f"no device spec for tier {tier.name}")


def hierarchy_cost(
    shape: HierarchyShape,
    specs: dict[Tier, DeviceSpec] | None = None,
) -> float:
    """Total device cost of ``shape`` in dollars."""
    return sum(
        shape.capacity_gb(tier) * spec_for(tier, specs).price_per_gb
        for tier in TIER_ORDER
    )


def performance_per_price(throughput_ops: float, cost_dollars: float) -> float:
    """Operations per second per dollar (the paper's T/C metric)."""
    if cost_dollars <= 0:
        raise ValueError("hierarchy cost must be positive")
    return throughput_ops / cost_dollars


def equi_cost_nvm_gb(dram_gb: float, specs: dict[Tier, DeviceSpec] | None = None) -> float:
    """NVM capacity purchasable for the price of ``dram_gb`` of DRAM.

    Used by the Fig. 5 experiment to build equi-cost DRAM-SSD and NVM-SSD
    hierarchies (the paper's 140 GB DRAM vs 340 GB NVM configurations have
    roughly this ratio).
    """
    table = specs or DEFAULT_SPECS
    return dram_gb * table[Tier.DRAM].price_per_gb / table[Tier.NVM].price_per_gb
