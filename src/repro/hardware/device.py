"""Simulated storage devices.

Each device wraps a :class:`~repro.hardware.specs.DeviceSpec` and charges
access costs (latency + transfer time, with media-granularity
amplification) to a shared :class:`~repro.hardware.simclock.CostAccumulator`.
Devices also track cumulative read/write volume, which the lifetime
experiments (Figs. 8 and 13 of the paper) report directly.

Devices do not store page *content* — the page layer owns content; the
device layer owns capacity accounting and cost.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..np_compat import np
from .simclock import FP_SCALE, CostAccumulator, to_fp
from .specs import DeviceSpec, Tier


@dataclass
class DeviceCounters:
    """Cumulative traffic counters for one device."""

    read_ops: int = 0
    write_ops: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    #: Bytes actually touched on the media (>= logical bytes because of the
    #: media access granularity). Endurance is consumed in media bytes.
    media_read_bytes: int = 0
    media_write_bytes: int = 0
    persist_barriers: int = 0

    def copy(self) -> "DeviceCounters":
        return DeviceCounters(
            self.read_ops,
            self.write_ops,
            self.read_bytes,
            self.write_bytes,
            self.media_read_bytes,
            self.media_write_bytes,
            self.persist_barriers,
        )


class Device:
    """A single simulated storage device.

    Parameters
    ----------
    spec:
        Performance characteristics (Table 1 of the paper).
    capacity_bytes:
        Usable capacity. ``None`` means unbounded (useful for the SSD,
        which holds the whole database in every experiment).
    cost:
        Accumulator that receives simulated service demands. A fresh
        accumulator is created when omitted.
    """

    def __init__(
        self,
        spec: DeviceSpec,
        capacity_bytes: int | None = None,
        cost: CostAccumulator | None = None,
    ) -> None:
        if capacity_bytes is not None and capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        self.spec = spec
        self.capacity_bytes = capacity_bytes
        self.cost = cost if cost is not None else CostAccumulator()
        self.counters = DeviceCounters()
        self._lock = threading.Lock()
        # Hot-path constants, precomputed to keep read()/write() cheap.
        self._key = spec.tier.value
        self._gran = spec.media_granularity
        self._seq_read_lat = spec.seq_read_latency_ns
        self._rand_read_lat = spec.rand_read_latency_ns
        self._seq_read_ns_per_byte = 1e9 / spec.seq_read_bw
        self._rand_read_ns_per_byte = 1e9 / spec.rand_read_bw
        self._seq_write_ns_per_byte = 1e9 / spec.seq_write_bw
        self._rand_write_ns_per_byte = 1e9 / spec.rand_write_bw
        self._is_ssd = spec.tier is Tier.SSD

    # ------------------------------------------------------------------
    @property
    def tier(self) -> Tier:
        return self.spec.tier

    @property
    def resource_key(self) -> str:
        """Key under which this device's demand is accumulated."""
        return self.spec.tier.value

    def capacity_pages(self, page_size: int) -> int | None:
        if self.capacity_bytes is None:
            return None
        return self.capacity_bytes // page_size

    # ------------------------------------------------------------------
    # Access costing
    # ------------------------------------------------------------------
    def read(self, nbytes: int, sequential: bool = False) -> float:
        """Charge a read of ``nbytes`` and return its service time (ns).

        The idle access latency is time the *issuing worker* waits —
        concurrent workers overlap it — so it is charged to the divisible
        CPU/worker resource; only the media transfer occupies the device.
        """
        gran = self._gran
        media = ((nbytes + gran - 1) // gran) * gran if nbytes > 0 else 0
        if sequential:
            latency = self._seq_read_lat
            transfer = media * self._seq_read_ns_per_byte
        else:
            latency = self._rand_read_lat
            transfer = media * self._rand_read_ns_per_byte
        counters = self.counters
        with self._lock:
            counters.read_ops += 1
            counters.read_bytes += nbytes
            counters.media_read_bytes += media
        self.cost.charge(self._key, transfer, media)
        self.cost.charge(CostAccumulator.CPU, latency)
        return latency + transfer

    def write(self, nbytes: int, sequential: bool = False) -> float:
        """Charge a write of ``nbytes`` and return its service time (ns)."""
        gran = self._gran
        media = ((nbytes + gran - 1) // gran) * gran if nbytes > 0 else 0
        if sequential:
            transfer = media * self._seq_write_ns_per_byte
        else:
            transfer = media * self._rand_write_ns_per_byte
        latency = 0.0
        if self._is_ssd:
            # Block devices pay their access latency on writes as well.
            latency = self._seq_read_lat if sequential else self._rand_read_lat
        counters = self.counters
        with self._lock:
            counters.write_ops += 1
            counters.write_bytes += nbytes
            counters.media_write_bytes += media
        self.cost.charge(self._key, transfer, media)
        if latency:
            self.cost.charge(CostAccumulator.CPU, latency)
        return latency + transfer

    # ------------------------------------------------------------------
    # Columnar (batched) access costing
    # ------------------------------------------------------------------
    def read_batch(self, nbytes, count: int | None = None, sequential: bool = False):
        """Charge a batch of reads with one locked reduction.

        ``nbytes`` is either a scalar (uniform reads — pass ``count``) or
        an int array of per-op sizes.  Returns ``(transfer_fp, latency_fp)``
        where ``transfer_fp`` is an int64 array of per-op media transfer
        times in fixed-point units and ``latency_fp`` the (uniform)
        access latency per op.  Counter bumps and cost charges are
        element-for-element identical to ``count`` calls of :meth:`read`
        — quantisation happens per element before the integer reduction.
        """
        if np is None:
            raise RuntimeError("read_batch requires numpy")
        gran = self._gran
        latency = self._seq_read_lat if sequential else self._rand_read_lat
        npb = self._seq_read_ns_per_byte if sequential else self._rand_read_ns_per_byte
        latency_fp = to_fp(latency)
        if count is not None:
            n = int(count)
            media = ((nbytes + gran - 1) // gran) * gran if nbytes > 0 else 0
            # Same two float steps as read(): media * npb, then quantise.
            fp = round((media * npb) * FP_SCALE)
            transfer_fp = np.full(n, fp, dtype=np.int64)
            total_fp = fp * n
            logical_bytes = nbytes * n
            media_bytes = media * n
        else:
            sizes = np.asarray(nbytes, dtype=np.int64)
            n = int(sizes.size)
            media_arr = np.where(sizes > 0, ((sizes + gran - 1) // gran) * gran, 0)
            transfer = media_arr.astype(np.float64) * npb
            transfer_fp = np.rint(transfer * FP_SCALE).astype(np.int64)
            total_fp = int(transfer_fp.sum())
            logical_bytes = int(sizes.sum())
            media_bytes = int(media_arr.sum())
        counters = self.counters
        with self._lock:
            counters.read_ops += n
            counters.read_bytes += logical_bytes
            counters.media_read_bytes += media_bytes
        self.cost.charge_batch_fp(self._key, total_fp, n, media_bytes)
        self.cost.charge_batch_fp(CostAccumulator.CPU, latency_fp * n, n)
        return transfer_fp, latency_fp

    def write_batch(self, nbytes, count: int | None = None, sequential: bool = False):
        """Batched :meth:`write` — same contract as :meth:`read_batch`."""
        if np is None:
            raise RuntimeError("write_batch requires numpy")
        gran = self._gran
        npb = self._seq_write_ns_per_byte if sequential else self._rand_write_ns_per_byte
        latency = 0.0
        if self._is_ssd:
            latency = self._seq_read_lat if sequential else self._rand_read_lat
        latency_fp = to_fp(latency)
        if count is not None:
            n = int(count)
            media = ((nbytes + gran - 1) // gran) * gran if nbytes > 0 else 0
            fp = round((media * npb) * FP_SCALE)
            transfer_fp = np.full(n, fp, dtype=np.int64)
            total_fp = fp * n
            logical_bytes = nbytes * n
            media_bytes = media * n
        else:
            sizes = np.asarray(nbytes, dtype=np.int64)
            n = int(sizes.size)
            media_arr = np.where(sizes > 0, ((sizes + gran - 1) // gran) * gran, 0)
            transfer = media_arr.astype(np.float64) * npb
            transfer_fp = np.rint(transfer * FP_SCALE).astype(np.int64)
            total_fp = int(transfer_fp.sum())
            logical_bytes = int(sizes.sum())
            media_bytes = int(media_arr.sum())
        counters = self.counters
        with self._lock:
            counters.write_ops += n
            counters.write_bytes += logical_bytes
            counters.media_write_bytes += media_bytes
        self.cost.charge_batch_fp(self._key, total_fp, n, media_bytes)
        if latency:
            # write() only charges CPU when the latency is non-zero, so the
            # batched op count must match that behaviour exactly.
            self.cost.charge_batch_fp(CostAccumulator.CPU, latency_fp * n, n)
        return transfer_fp, latency_fp

    def persist_barrier(self) -> float:
        """Charge a persistence barrier (clwb + sfence on NVM).

        The barrier stalls the issuing worker, not the device, so it is
        charged as worker time.
        """
        service = self.spec.persist_barrier_ns
        with self._lock:
            self.counters.persist_barriers += 1
        if service:
            self.cost.charge(CostAccumulator.CPU, service)
        return service

    # ------------------------------------------------------------------
    def snapshot_counters(self) -> DeviceCounters:
        with self._lock:
            return self.counters.copy()

    def reset_counters(self) -> None:
        with self._lock:
            self.counters = DeviceCounters()

    def write_volume_gb(self) -> float:
        """Cumulative media write volume in (real) gigabytes."""
        with self._lock:
            return self.counters.media_write_bytes / 1e9

    def endurance_consumed(self) -> float:
        """Fraction of device endurance consumed so far.

        Endurance is modelled as ``capacity * endurance_cycles`` total media
        write bytes; unbounded-capacity devices report 0.
        """
        if not self.capacity_bytes:
            return 0.0
        total = self.capacity_bytes * self.spec.endurance_cycles
        with self._lock:
            return self.counters.media_write_bytes / total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cap = "inf" if self.capacity_bytes is None else str(self.capacity_bytes)
        return f"Device({self.spec.name!r}, capacity={cap})"


def cpu_charge(cost: CostAccumulator, service_ns: float) -> None:
    """Charge pure CPU work (index lookups, latching, copying logic)."""
    cost.charge(CostAccumulator.CPU, service_ns)
