"""YCSB workload (Cooper et al. [6]) as used in the paper (§6.1).

One table of ~1 KB tuples (4 B key + ten 100 B string columns), keys
drawn from a scrambled Zipfian distribution (default skew z = 0.3).
Three mixes:

* **YCSB-RO** — 100% reads,
* **YCSB-BA** — 50% reads / 50% updates,
* **YCSB-WH** — 10% reads / 90% updates.

A read fetches the whole tuple; an update rewrites one 100 B column.
The generator emits logical operations; adapters below map them onto
buffer-manager page accesses or engine transactions.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterator

from ..hardware.specs import PAGE_SIZE
from ..np_compat import np
from .zipf import ScrambledZipfianGenerator, UniformGenerator

#: YCSB tuple layout from §6.1: 4 B key + 10 × 100 B columns ≈ 1 KB.
TUPLE_SIZE = 1024
COLUMN_SIZE = 100
NUM_COLUMNS = 10
TUPLES_PER_PAGE = PAGE_SIZE // TUPLE_SIZE


class OpKind(enum.Enum):
    READ = "read"
    UPDATE = "update"


@dataclass(frozen=True)
class Operation:
    """One logical YCSB operation."""

    kind: OpKind
    key: int
    column: int = 0

    @property
    def is_write(self) -> bool:
        return self.kind is OpKind.UPDATE


class OpBatch:
    """A struct-of-arrays batch of YCSB operations.

    Columns are numpy int64/bool arrays when numpy is installed (the
    batch access path consumes them directly) and plain lists otherwise;
    either way they are positionally parallel and derived physical
    columns (page id, intra-page offset, access size) are computed in
    bulk rather than per op.
    """

    __slots__ = ("keys", "is_writes", "columns")

    def __init__(self, keys, is_writes, columns) -> None:
        if np is not None:
            self.keys = np.asarray(keys, dtype=np.int64)
            self.is_writes = np.asarray(is_writes, dtype=bool)
            self.columns = np.asarray(columns, dtype=np.int64)
        else:
            self.keys = keys
            self.is_writes = is_writes
            self.columns = columns

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def page_ids(self):
        """Physical page of each key (bulk ``page_of``)."""
        if np is not None:
            return self.keys // TUPLES_PER_PAGE
        return [key // TUPLES_PER_PAGE for key in self.keys]

    @property
    def offsets(self):
        """Intra-page byte offset of each access (bulk ``offset_of``)."""
        if np is not None:
            slots = self.keys % TUPLES_PER_PAGE
            return slots * TUPLE_SIZE + 4 + self.columns * COLUMN_SIZE
        return [
            (key % TUPLES_PER_PAGE) * TUPLE_SIZE + 4 + column * COLUMN_SIZE
            for key, column in zip(self.keys, self.columns)
        ]

    @property
    def sizes(self):
        """Bytes touched per op: whole tuple on read, one column on update."""
        if np is not None:
            return np.where(self.is_writes, COLUMN_SIZE, TUPLE_SIZE)
        return [
            COLUMN_SIZE if is_write else TUPLE_SIZE
            for is_write in self.is_writes
        ]

    def operations(self) -> Iterator[Operation]:
        """Row view for per-op consumers (tests, fallback paths)."""
        for index in range(len(self.keys)):
            if self.is_writes[index]:
                yield Operation(OpKind.UPDATE, int(self.keys[index]),
                                column=int(self.columns[index]))
            else:
                yield Operation(OpKind.READ, int(self.keys[index]))


@dataclass(frozen=True)
class YcsbMix:
    """Read/update proportions of one workload variant."""

    name: str
    read_fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")


YCSB_RO = YcsbMix("YCSB-RO", 1.0)
YCSB_BA = YcsbMix("YCSB-BA", 0.5)
YCSB_WH = YcsbMix("YCSB-WH", 0.1)

MIXES = {mix.name: mix for mix in (YCSB_RO, YCSB_BA, YCSB_WH)}


class YcsbWorkload:
    """Stream of YCSB operations over ``num_tuples`` keys."""

    def __init__(
        self,
        num_tuples: int,
        mix: YcsbMix = YCSB_BA,
        skew: float = 0.3,
        seed: int = 1,
    ) -> None:
        if num_tuples <= 0:
            raise ValueError("num_tuples must be positive")
        self.num_tuples = num_tuples
        self.mix = mix
        self.skew = skew
        self.rng = random.Random(seed)
        if skew > 0:
            self._keys = ScrambledZipfianGenerator(num_tuples, skew, seed + 1)
        else:
            self._keys = UniformGenerator(num_tuples, seed + 1)

    @property
    def num_pages(self) -> int:
        """Pages needed to hold the table."""
        return (self.num_tuples + TUPLES_PER_PAGE - 1) // TUPLES_PER_PAGE

    def next_op(self) -> Operation:
        key = self._keys.next()
        if self.rng.random() < self.mix.read_fraction:
            return Operation(OpKind.READ, key)
        return Operation(OpKind.UPDATE, key, column=self.rng.randrange(NUM_COLUMNS))

    def operations(self, count: int) -> Iterator[Operation]:
        for _ in range(count):
            yield self.next_op()

    def next_ops(self, count: int) -> OpBatch:
        """``count`` operations as a struct-of-arrays batch.

        Replays :meth:`next_op`'s RNG draw order exactly (key draw, mix
        draw, column draw on updates), so a seeded workload produces the
        same operation stream whether consumed one op or one batch at a
        time.
        """
        keys: list[int] = []
        is_writes: list[bool] = []
        columns: list[int] = []
        next_key = self._keys.next
        rng = self.rng
        read_fraction = self.mix.read_fraction
        for _ in range(count):
            keys.append(next_key())
            if rng.random() < read_fraction:
                is_writes.append(False)
                columns.append(0)
            else:
                is_writes.append(True)
                columns.append(rng.randrange(NUM_COLUMNS))
        return OpBatch(keys, is_writes, columns)

    def page_popularity(self, samples: int = 30_000) -> list[int]:
        """Pages ranked hottest-first, estimated by sampling the key
        distribution with an independent generator.

        Used for warm-start buffer priming: the ranking reflects the
        workload's steady-state residency, not any particular run.
        """
        if self.skew > 0:
            sampler = ScrambledZipfianGenerator(self.num_tuples, self.skew,
                                                seed=987_654)
        else:
            sampler = UniformGenerator(self.num_tuples, seed=987_654)
        counts: dict[int, int] = {}
        for _ in range(samples):
            page = sampler.next() // TUPLES_PER_PAGE
            counts[page] = counts.get(page, 0) + 1
        ranked = sorted(counts, key=counts.get, reverse=True)
        seen = set(ranked)
        # Unsampled pages follow in id order (they are all equally cold).
        ranked.extend(p for p in range(self.num_pages) if p not in seen)
        return ranked

    # ------------------------------------------------------------------
    # Physical mapping helpers
    # ------------------------------------------------------------------
    @staticmethod
    def page_of(key: int) -> int:
        return key // TUPLES_PER_PAGE

    @staticmethod
    def offset_of(key: int, column: int = 0) -> int:
        slot = key % TUPLES_PER_PAGE
        return slot * TUPLE_SIZE + 4 + column * COLUMN_SIZE

    @staticmethod
    def access_bytes(op: Operation) -> int:
        """Bytes touched: whole tuple on read, one column on update."""
        return TUPLE_SIZE if op.kind is OpKind.READ else COLUMN_SIZE


def make_payload(rng: random.Random, size: int = COLUMN_SIZE) -> bytes:
    """Random string-column payload for engine-level runs."""
    return bytes(rng.getrandbits(8) for _ in range(min(size, 16))) * (
        max(1, size // 16)
    )
