"""YCSB workload (Cooper et al. [6]) as used in the paper (§6.1).

One table of ~1 KB tuples (4 B key + ten 100 B string columns), keys
drawn from a scrambled Zipfian distribution (default skew z = 0.3).
Three mixes:

* **YCSB-RO** — 100% reads,
* **YCSB-BA** — 50% reads / 50% updates,
* **YCSB-WH** — 10% reads / 90% updates.

A read fetches the whole tuple; an update rewrites one 100 B column.
The generator emits logical operations; adapters below map them onto
buffer-manager page accesses or engine transactions.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterator

from ..hardware.specs import PAGE_SIZE
from .zipf import ScrambledZipfianGenerator, UniformGenerator

#: YCSB tuple layout from §6.1: 4 B key + 10 × 100 B columns ≈ 1 KB.
TUPLE_SIZE = 1024
COLUMN_SIZE = 100
NUM_COLUMNS = 10
TUPLES_PER_PAGE = PAGE_SIZE // TUPLE_SIZE


class OpKind(enum.Enum):
    READ = "read"
    UPDATE = "update"


@dataclass(frozen=True)
class Operation:
    """One logical YCSB operation."""

    kind: OpKind
    key: int
    column: int = 0

    @property
    def is_write(self) -> bool:
        return self.kind is OpKind.UPDATE


@dataclass(frozen=True)
class YcsbMix:
    """Read/update proportions of one workload variant."""

    name: str
    read_fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")


YCSB_RO = YcsbMix("YCSB-RO", 1.0)
YCSB_BA = YcsbMix("YCSB-BA", 0.5)
YCSB_WH = YcsbMix("YCSB-WH", 0.1)

MIXES = {mix.name: mix for mix in (YCSB_RO, YCSB_BA, YCSB_WH)}


class YcsbWorkload:
    """Stream of YCSB operations over ``num_tuples`` keys."""

    def __init__(
        self,
        num_tuples: int,
        mix: YcsbMix = YCSB_BA,
        skew: float = 0.3,
        seed: int = 1,
    ) -> None:
        if num_tuples <= 0:
            raise ValueError("num_tuples must be positive")
        self.num_tuples = num_tuples
        self.mix = mix
        self.skew = skew
        self.rng = random.Random(seed)
        if skew > 0:
            self._keys = ScrambledZipfianGenerator(num_tuples, skew, seed + 1)
        else:
            self._keys = UniformGenerator(num_tuples, seed + 1)

    @property
    def num_pages(self) -> int:
        """Pages needed to hold the table."""
        return (self.num_tuples + TUPLES_PER_PAGE - 1) // TUPLES_PER_PAGE

    def next_op(self) -> Operation:
        key = self._keys.next()
        if self.rng.random() < self.mix.read_fraction:
            return Operation(OpKind.READ, key)
        return Operation(OpKind.UPDATE, key, column=self.rng.randrange(NUM_COLUMNS))

    def operations(self, count: int) -> Iterator[Operation]:
        for _ in range(count):
            yield self.next_op()

    def page_popularity(self, samples: int = 30_000) -> list[int]:
        """Pages ranked hottest-first, estimated by sampling the key
        distribution with an independent generator.

        Used for warm-start buffer priming: the ranking reflects the
        workload's steady-state residency, not any particular run.
        """
        if self.skew > 0:
            sampler = ScrambledZipfianGenerator(self.num_tuples, self.skew,
                                                seed=987_654)
        else:
            sampler = UniformGenerator(self.num_tuples, seed=987_654)
        counts: dict[int, int] = {}
        for _ in range(samples):
            page = sampler.next() // TUPLES_PER_PAGE
            counts[page] = counts.get(page, 0) + 1
        ranked = sorted(counts, key=counts.get, reverse=True)
        seen = set(ranked)
        # Unsampled pages follow in id order (they are all equally cold).
        ranked.extend(p for p in range(self.num_pages) if p not in seen)
        return ranked

    # ------------------------------------------------------------------
    # Physical mapping helpers
    # ------------------------------------------------------------------
    @staticmethod
    def page_of(key: int) -> int:
        return key // TUPLES_PER_PAGE

    @staticmethod
    def offset_of(key: int, column: int = 0) -> int:
        slot = key % TUPLES_PER_PAGE
        return slot * TUPLE_SIZE + 4 + column * COLUMN_SIZE

    @staticmethod
    def access_bytes(op: Operation) -> int:
        """Bytes touched: whole tuple on read, one column on update."""
        return TUPLE_SIZE if op.kind is OpKind.READ else COLUMN_SIZE


def make_payload(rng: random.Random, size: int = COLUMN_SIZE) -> bytes:
    """Random string-column payload for engine-level runs."""
    return bytes(rng.getrandbits(8) for _ in range(min(size, 16))) * (
        max(1, size // 16)
    )
