"""Zipfian key generation (Gray et al., SIGMOD '94 [14]).

YCSB's key popularity follows a Zipfian distribution; the paper uses
skew ``z = 0.3`` by default and ``z = 0.5`` for the storage-design grid
(§6.6).  This is the constant-time method from "Quickly Generating
Billion-Record Synthetic Databases": after an O(n) zeta precomputation,
each draw is O(1).

A *scrambled* variant spreads the hottest ranks over the key space with
a Fibonacci-style hash so hot keys are not physically clustered on the
same pages — matching YCSB's ScrambledZipfianGenerator.
"""

from __future__ import annotations

import random


def zeta(n: int, theta: float) -> float:
    """Finite zeta sum ``sum_{i=1..n} 1/i^theta``."""
    if n <= 0:
        raise ValueError("n must be positive")
    return sum(1.0 / i**theta for i in range(1, n + 1))


class ZipfianGenerator:
    """Draws ranks in ``[0, n)`` with Zipfian skew ``theta``.

    ``theta = 0`` degenerates to uniform; the generator special-cases it
    to avoid division by zero in the closed form.
    """

    def __init__(self, n: int, theta: float = 0.3, seed: int = 1) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        if theta < 0 or theta >= 1:
            raise ValueError("theta must be in [0, 1)")
        self.n = n
        self.theta = theta
        self.rng = random.Random(seed)
        if theta > 0:
            self._zetan = zeta(n, theta)
            self._zeta2 = zeta(2, theta)
            self._alpha = 1.0 / (1.0 - theta)
            if n > 2:
                self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (
                    1.0 - self._zeta2 / self._zetan
                )
            else:
                # With n <= 2 the first two branches of next() cover the
                # whole probability mass; eta is never used.
                self._eta = 0.0

    def next(self) -> int:
        """One rank draw; rank 0 is the most popular."""
        if self.theta == 0:
            return self.rng.randrange(self.n)
        u = self.rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return int(self.n * (self._eta * u - self._eta + 1.0) ** self._alpha) % self.n

    def next_many(self, count: int) -> list[int]:
        """``count`` draws, consuming the RNG stream exactly like
        ``count`` calls of :meth:`next` (batching must not change which
        keys a seeded run produces)."""
        next_one = self.next
        return [next_one() for _ in range(count)]

    def __iter__(self):
        while True:
            yield self.next()


#: Knuth's multiplicative-hash constant (2^64 / golden ratio).
_FIB_HASH = 0x9E3779B97F4A7C15
_MASK_64 = (1 << 64) - 1


def scramble(rank: int, n: int) -> int:
    """Deterministically spread rank ``rank`` over ``[0, n)``."""
    return ((rank * _FIB_HASH) & _MASK_64) % n


class ScrambledZipfianGenerator:
    """Zipfian draws whose hot items are scattered across the key space."""

    def __init__(self, n: int, theta: float = 0.3, seed: int = 1) -> None:
        self._inner = ZipfianGenerator(n, theta, seed)
        self.n = n

    def next(self) -> int:
        return scramble(self._inner.next(), self.n)

    def next_many(self, count: int) -> list[int]:
        """RNG-order-preserving batch draw (see
        :meth:`ZipfianGenerator.next_many`)."""
        n = self.n
        return [scramble(rank, n) for rank in self._inner.next_many(count)]

    def __iter__(self):
        while True:
            yield self.next()


class UniformGenerator:
    """Uniform draws over ``[0, n)`` with the same interface."""

    def __init__(self, n: int, seed: int = 1) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        self.rng = random.Random(seed)

    def next(self) -> int:
        return self.rng.randrange(self.n)

    def next_many(self, count: int) -> list[int]:
        """RNG-order-preserving batch draw (see
        :meth:`ZipfianGenerator.next_many`)."""
        randrange = self.rng.randrange
        n = self.n
        return [randrange(n) for _ in range(count)]

    def __iter__(self):
        while True:
            yield self.next()


def nurand(rng: random.Random, a: int, x: int, y: int, c: int | None = None) -> int:
    """TPC-C's non-uniform random function NURand(A, x, y) [35]."""
    if c is None:
        c = a // 2
    return (((rng.randrange(a + 1) | rng.randint(x, y)) + c) % (y - x + 1)) + x
