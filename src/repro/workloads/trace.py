"""Access-trace recording and replay.

A trace is a flat sequence of page accesses.  Traces make experiments
repeatable across buffer managers (the Fig. 12 ablation runs the exact
same access stream through HyMem and both Spitfire policies) and allow
captured workloads to be replayed offline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from .tpcc import PageAccess


@dataclass
class Trace:
    """An in-memory access trace."""

    accesses: list[PageAccess]

    def __len__(self) -> int:
        return len(self.accesses)

    def __iter__(self) -> Iterator[PageAccess]:
        return iter(self.accesses)

    @property
    def num_pages(self) -> int:
        if not self.accesses:
            return 0
        return max(a.page_id for a in self.accesses) + 1

    @property
    def write_fraction(self) -> float:
        if not self.accesses:
            return 0.0
        return sum(1 for a in self.accesses if a.is_write) / len(self.accesses)

    # ------------------------------------------------------------------
    @classmethod
    def record(cls, accesses: Iterable[PageAccess], limit: int | None = None) -> "Trace":
        """Materialise up to ``limit`` accesses from a generator."""
        collected: list[PageAccess] = []
        for access in accesses:
            collected.append(access)
            if limit is not None and len(collected) >= limit:
                break
        return cls(collected)

    # ------------------------------------------------------------------
    # Persistence (JSON-lines keeps traces diffable and inspectable)
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        with open(path, "w") as fh:
            for access in self.accesses:
                fh.write(json.dumps({
                    "page": access.page_id,
                    "off": access.offset,
                    "len": access.nbytes,
                    "w": int(access.is_write),
                }) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        accesses: list[PageAccess] = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                raw = json.loads(line)
                accesses.append(PageAccess(
                    page_id=raw["page"],
                    offset=raw["off"],
                    nbytes=raw["len"],
                    is_write=bool(raw["w"]),
                ))
        return cls(accesses)
