"""Access-trace recording and replay.

A trace is a flat sequence of page accesses.  Traces make experiments
repeatable across buffer managers (the Fig. 12 ablation runs the exact
same access stream through HyMem and both Spitfire policies) and allow
captured workloads to be replayed offline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from ..np_compat import np
from .tpcc import PageAccess


class AccessBatch:
    """A struct-of-arrays batch of page accesses.

    Columns are parallel numpy arrays when numpy is installed and plain
    lists otherwise — the same convention as
    :class:`~repro.workloads.ycsb.OpBatch`.
    """

    __slots__ = ("page_ids", "offsets", "sizes", "is_writes")

    def __init__(self, page_ids, offsets, sizes, is_writes) -> None:
        if np is not None:
            self.page_ids = np.asarray(page_ids, dtype=np.int64)
            self.offsets = np.asarray(offsets, dtype=np.int64)
            self.sizes = np.asarray(sizes, dtype=np.int64)
            self.is_writes = np.asarray(is_writes, dtype=bool)
        else:
            self.page_ids = page_ids
            self.offsets = offsets
            self.sizes = sizes
            self.is_writes = is_writes

    def __len__(self) -> int:
        return len(self.page_ids)

    @classmethod
    def from_accesses(cls, accesses: Iterable[PageAccess]) -> "AccessBatch":
        """Columnarise a row-oriented access sequence."""
        page_ids: list[int] = []
        offsets: list[int] = []
        sizes: list[int] = []
        is_writes: list[bool] = []
        for access in accesses:
            page_ids.append(access.page_id)
            offsets.append(access.offset)
            sizes.append(access.nbytes)
            is_writes.append(access.is_write)
        return cls(page_ids, offsets, sizes, is_writes)


@dataclass
class Trace:
    """An in-memory access trace."""

    accesses: list[PageAccess]

    def __len__(self) -> int:
        return len(self.accesses)

    def __iter__(self) -> Iterator[PageAccess]:
        return iter(self.accesses)

    def batches(self, batch_size: int) -> Iterator[AccessBatch]:
        """The trace as successive struct-of-arrays batches.

        The final batch may be short; concatenating all batches yields
        the original access order exactly.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        for start in range(0, len(self.accesses), batch_size):
            yield AccessBatch.from_accesses(
                self.accesses[start:start + batch_size]
            )

    @property
    def num_pages(self) -> int:
        if not self.accesses:
            return 0
        return max(a.page_id for a in self.accesses) + 1

    @property
    def write_fraction(self) -> float:
        if not self.accesses:
            return 0.0
        return sum(1 for a in self.accesses if a.is_write) / len(self.accesses)

    # ------------------------------------------------------------------
    @classmethod
    def record(cls, accesses: Iterable[PageAccess], limit: int | None = None) -> "Trace":
        """Materialise up to ``limit`` accesses from a generator."""
        collected: list[PageAccess] = []
        for access in accesses:
            collected.append(access)
            if limit is not None and len(collected) >= limit:
                break
        return cls(collected)

    # ------------------------------------------------------------------
    # Persistence (JSON-lines keeps traces diffable and inspectable)
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        with open(path, "w") as fh:
            for access in self.accesses:
                fh.write(json.dumps({
                    "page": access.page_id,
                    "off": access.offset,
                    "len": access.nbytes,
                    "w": int(access.is_write),
                }) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        accesses: list[PageAccess] = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                raw = json.loads(line)
                accesses.append(PageAccess(
                    page_id=raw["page"],
                    offset=raw["off"],
                    nbytes=raw["len"],
                    is_write=bool(raw["w"]),
                ))
        return cls(accesses)
