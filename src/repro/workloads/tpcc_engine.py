"""Engine-level TPC-C: the five transactions executed on the storage engine.

While :mod:`repro.workloads.tpcc` reproduces TPC-C's page *access
pattern* for buffer-manager experiments, this module implements the
benchmark's actual transaction logic — schema, population, and the five
transaction types with their standard parameter distributions — against
:class:`~repro.engine.StorageEngine`, i.e. through the B+Tree index,
MVTO, and the WAL. It is the workload the paper's engine-level numbers
correspond to, scaled down by a warehouse count.

Simplifications (documented, standard for research prototypes):
secondary indexes (customer-by-last-name) are modelled by scanning a
small candidate set; monetary fields are integers (cents).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from ..engine.engine import StorageEngine
from ..txn.transaction import Transaction, TransactionAborted
from .zipf import nurand

#: Scaled-down per-warehouse cardinalities (full TPC-C: 10 districts,
#: 3000 customers/district, 100k items/stock). The ratios are kept.
DISTRICTS_PER_WAREHOUSE = 10
CUSTOMERS_PER_DISTRICT = 30
ITEMS = 1000

#: Standard transaction mix.
TXN_WEIGHTS = (
    ("new_order", 0.45),
    ("payment", 0.43),
    ("order_status", 0.04),
    ("delivery", 0.04),
    ("stock_level", 0.04),
)


def _encode(record: dict) -> bytes:
    return json.dumps(record, separators=(",", ":")).encode()


def _decode(value: bytes) -> dict:
    return json.loads(value.decode())


@dataclass
class TpccStats:
    """Per-transaction-type outcome counters."""

    committed: dict[str, int] = field(default_factory=dict)
    aborted: dict[str, int] = field(default_factory=dict)

    def record(self, kind: str, ok: bool) -> None:
        bucket = self.committed if ok else self.aborted
        bucket[kind] = bucket.get(kind, 0) + 1

    @property
    def total_committed(self) -> int:
        return sum(self.committed.values())

    @property
    def total_aborted(self) -> int:
        return sum(self.aborted.values())


class TpccEngine:
    """TPC-C schema, loader, and transaction implementations."""

    def __init__(self, engine: StorageEngine, warehouses: int = 2,
                 seed: int = 1) -> None:
        if warehouses <= 0:
            raise ValueError("warehouses must be positive")
        self.engine = engine
        self.warehouses = warehouses
        self.rng = random.Random(seed)
        self.stats = TpccStats()
        self._next_order_id: dict[tuple[int, int], int] = {}
        for name, tuple_size in (
            ("warehouse", 128), ("district", 128), ("customer", 512),
            ("item", 128), ("stock", 256), ("orders", 128),
            ("order_line", 128), ("new_orders", 64), ("history", 128),
        ):
            engine.create_table(name, tuple_size=tuple_size)
        self._history_seq = 0

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def load(self) -> None:
        """Populate the initial database (TPC-C clause 4.3, scaled)."""
        engine = self.engine

        def populate(txn: Transaction) -> None:
            for item in range(ITEMS):
                engine.insert(txn, "item", item, _encode({
                    "name": f"item-{item}", "price": 100 + item % 900,
                }))
            for w in range(self.warehouses):
                engine.insert(txn, "warehouse", w, _encode({
                    "name": f"w{w}", "ytd": 0,
                }))
                for d in range(DISTRICTS_PER_WAREHOUSE):
                    engine.insert(txn, "district", (w, d), _encode({
                        "ytd": 0, "next_o_id": 1,
                    }))
                    self._next_order_id[(w, d)] = 1
                    for c in range(CUSTOMERS_PER_DISTRICT):
                        engine.insert(txn, "customer", (w, d, c), _encode({
                            "last": f"name{c % 10}", "balance": -1000,
                            "ytd_payment": 1000, "payment_cnt": 1,
                        }))
                for item in range(ITEMS):
                    engine.insert(txn, "stock", (w, item), _encode({
                        "quantity": 50 + item % 50, "ytd": 0, "order_cnt": 0,
                    }))

        engine.execute(populate)

    # ------------------------------------------------------------------
    # Parameter generation (TPC-C clause 2 distributions)
    # ------------------------------------------------------------------
    def _random_warehouse(self) -> int:
        return self.rng.randrange(self.warehouses)

    def _random_district(self) -> int:
        return self.rng.randrange(DISTRICTS_PER_WAREHOUSE)

    def _random_customer(self) -> int:
        return nurand(self.rng, 1023, 0, CUSTOMERS_PER_DISTRICT - 1)

    def _random_item(self) -> int:
        return nurand(self.rng, 8191, 0, ITEMS - 1)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def run_one(self) -> str:
        """Pick a transaction per the standard mix and execute it."""
        draw = self.rng.random()
        cumulative = 0.0
        kind = TXN_WEIGHTS[-1][0]
        for name, weight in TXN_WEIGHTS:
            cumulative += weight
            if draw < cumulative:
                kind = name
                break
        runner = getattr(self, f"txn_{kind}")
        try:
            runner()
            self.stats.record(kind, ok=True)
        except TransactionAborted:
            self.stats.record(kind, ok=False)
        return kind

    def txn_new_order(self) -> int:
        """Enter an order of 5-15 lines; 1% remote stock (clause 2.4)."""
        engine = self.engine
        w = self._random_warehouse()
        d = self._random_district()
        c = self._random_customer()
        lines = [
            (self._random_item(),
             self._random_warehouse()
             if self.warehouses > 1 and self.rng.random() < 0.01 else w,
             self.rng.randint(1, 10))
            for _ in range(self.rng.randint(5, 15))
        ]

        def body(txn: Transaction) -> int:
            district = _decode(engine.read(txn, "district", (w, d)))
            order_id = district["next_o_id"]
            district["next_o_id"] = order_id + 1
            engine.update(txn, "district", (w, d), _encode(district))
            engine.read(txn, "customer", (w, d, c))
            total = 0
            for number, (item_id, supply_w, quantity) in enumerate(lines):
                item = _decode(engine.read(txn, "item", item_id))
                stock = _decode(engine.read(txn, "stock", (supply_w, item_id)))
                if stock["quantity"] >= quantity + 10:
                    stock["quantity"] -= quantity
                else:
                    stock["quantity"] += 91 - quantity
                stock["ytd"] += quantity
                stock["order_cnt"] += 1
                engine.update(txn, "stock", (supply_w, item_id), _encode(stock))
                amount = item["price"] * quantity
                total += amount
                engine.insert(txn, "order_line", (w, d, order_id, number),
                              _encode({"item": item_id, "qty": quantity,
                                       "amount": amount}))
            engine.insert(txn, "orders", (w, d, order_id), _encode({
                "customer": c, "lines": len(lines), "carrier": None,
            }))
            engine.insert(txn, "new_orders", (w, d, order_id), _encode({}))
            return order_id

        return engine.execute(body)

    def txn_payment(self) -> None:
        """Record a customer payment; 15% remote customers (clause 2.5)."""
        engine = self.engine
        w = self._random_warehouse()
        d = self._random_district()
        cust_w = w
        if self.warehouses > 1 and self.rng.random() < 0.15:
            cust_w = self._random_warehouse()
        c = self._random_customer()
        amount = self.rng.randint(100, 500_000)
        history_id = self._history_seq
        self._history_seq += 1

        def body(txn: Transaction) -> None:
            warehouse = _decode(engine.read(txn, "warehouse", w))
            warehouse["ytd"] += amount
            engine.update(txn, "warehouse", w, _encode(warehouse))
            district = _decode(engine.read(txn, "district", (w, d)))
            district["ytd"] += amount
            engine.update(txn, "district", (w, d), _encode(district))
            customer = _decode(engine.read(txn, "customer", (cust_w, d, c)))
            customer["balance"] -= amount
            customer["ytd_payment"] += amount
            customer["payment_cnt"] += 1
            engine.update(txn, "customer", (cust_w, d, c), _encode(customer))
            engine.insert(txn, "history", (w, d, history_id), _encode({
                "customer": (cust_w, d, c), "amount": amount,
            }))

        engine.execute(body)

    def txn_order_status(self) -> dict | None:
        """Read a customer's most recent order (read-only, clause 2.6)."""
        engine = self.engine
        w = self._random_warehouse()
        d = self._random_district()
        c = self._random_customer()

        def body(txn: Transaction) -> dict | None:
            engine.read(txn, "customer", (w, d, c))
            next_o_id = self._next_order_id_hint(txn, w, d)
            for order_id in range(next_o_id - 1, max(0, next_o_id - 20), -1):
                raw = engine.read(txn, "orders", (w, d, order_id))
                if raw is None:
                    continue
                order = _decode(raw)
                if order["customer"] != c:
                    continue
                for number in range(order["lines"]):
                    engine.read(txn, "order_line", (w, d, order_id, number))
                return order
            return None

        return engine.execute(body)

    def txn_delivery(self) -> int:
        """Deliver the oldest undelivered order per district (clause 2.7)."""
        engine = self.engine
        w = self._random_warehouse()

        def body(txn: Transaction) -> int:
            delivered = 0
            for d in range(DISTRICTS_PER_WAREHOUSE):
                pending = engine.scan(txn, "new_orders", (w, d, 0),
                                      (w, d, 1 << 30))
                if not pending:
                    continue
                (key, _value) = pending[0]
                order_id = key[2]
                engine.delete(txn, "new_orders", key)
                raw = engine.read(txn, "orders", (w, d, order_id))
                if raw is None:
                    continue
                order = _decode(raw)
                order["carrier"] = self.rng.randint(1, 10)
                engine.update(txn, "orders", (w, d, order_id), _encode(order))
                total = 0
                for number in range(order["lines"]):
                    line_raw = engine.read(txn, "order_line",
                                           (w, d, order_id, number))
                    if line_raw is not None:
                        total += _decode(line_raw)["amount"]
                c = order["customer"]
                customer = _decode(engine.read(txn, "customer", (w, d, c)))
                customer["balance"] += total
                engine.update(txn, "customer", (w, d, c), _encode(customer))
                delivered += 1
            return delivered

        return engine.execute(body)

    def txn_stock_level(self) -> int:
        """Count low-stock items on recent orders (read-only, clause 2.8)."""
        engine = self.engine
        w = self._random_warehouse()
        d = self._random_district()
        threshold = self.rng.randint(10, 20)

        def body(txn: Transaction) -> int:
            next_o_id = self._next_order_id_hint(txn, w, d)
            seen: set[int] = set()
            for order_id in range(next_o_id - 1, max(0, next_o_id - 20), -1):
                raw = engine.read(txn, "orders", (w, d, order_id))
                if raw is None:
                    continue
                order = _decode(raw)
                for number in range(order["lines"]):
                    line_raw = engine.read(txn, "order_line",
                                           (w, d, order_id, number))
                    if line_raw is not None:
                        seen.add(_decode(line_raw)["item"])
            low = 0
            for item_id in seen:
                stock = _decode(engine.read(txn, "stock", (w, item_id)))
                if stock["quantity"] < threshold:
                    low += 1
            return low

        return engine.execute(body)

    # ------------------------------------------------------------------
    def _next_order_id_hint(self, txn: Transaction, w: int, d: int) -> int:
        raw = self.engine.read(txn, "district", (w, d))
        return _decode(raw)["next_o_id"]

    # ------------------------------------------------------------------
    # Consistency conditions (TPC-C clause 3.3, the checkable subset)
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Assert the invariants the committed state must satisfy."""
        engine = self.engine

        def body(txn: Transaction) -> None:
            for w in range(self.warehouses):
                warehouse = _decode(engine.read(txn, "warehouse", w))
                district_ytd = 0
                for d in range(DISTRICTS_PER_WAREHOUSE):
                    district = _decode(engine.read(txn, "district", (w, d)))
                    district_ytd += district["ytd"]
                    next_o_id = district["next_o_id"]
                    # Condition 2-ish: no order at or beyond next_o_id.
                    assert engine.read(txn, "orders", (w, d, next_o_id)) is None
                    # Every order below next_o_id that exists has its
                    # order lines present.
                    for order_id in range(max(1, next_o_id - 5), next_o_id):
                        raw = engine.read(txn, "orders", (w, d, order_id))
                        if raw is None:
                            continue
                        order = _decode(raw)
                        for number in range(order["lines"]):
                            assert engine.read(
                                txn, "order_line", (w, d, order_id, number)
                            ) is not None
                # Condition 1: W_YTD = sum(D_YTD).
                assert warehouse["ytd"] == district_ytd, (
                    f"warehouse {w}: ytd {warehouse['ytd']} != "
                    f"district sum {district_ytd}"
                )

        engine.execute(body)
