"""Engine-level YCSB: the key-value mixes executed transactionally.

The paper runs YCSB against its full engine — B+Tree index, MVTO, WAL —
not just the buffer manager ("Even on the YCSB-RO workload, SPITFIRE
updates pages containing meta-data related to the MVTO protocol",
§6.4).  This driver loads the §6.1 table (1 KB tuples: 4 B key + ten
100 B columns) into a :class:`~repro.engine.StorageEngine` and executes
the three mixes as single-tuple transactions with retry-on-abort.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..engine.engine import StorageEngine
from ..txn.transaction import TransactionAborted
from .ycsb import COLUMN_SIZE, NUM_COLUMNS, OpKind, TUPLE_SIZE, YcsbMix, YCSB_BA
from .zipf import ScrambledZipfianGenerator, UniformGenerator

TABLE_NAME = "usertable"


@dataclass
class YcsbEngineStats:
    reads: int = 0
    updates: int = 0
    aborts: int = 0

    @property
    def operations(self) -> int:
        return self.reads + self.updates


class YcsbEngine:
    """YCSB driver over the transactional storage engine."""

    def __init__(self, engine: StorageEngine, num_tuples: int,
                 mix: YcsbMix = YCSB_BA, skew: float = 0.3,
                 seed: int = 1) -> None:
        if num_tuples <= 0:
            raise ValueError("num_tuples must be positive")
        self.engine = engine
        self.num_tuples = num_tuples
        self.mix = mix
        self.rng = random.Random(seed)
        if skew > 0:
            self._keys = ScrambledZipfianGenerator(num_tuples, skew, seed + 1)
        else:
            self._keys = UniformGenerator(num_tuples, seed + 1)
        self.stats = YcsbEngineStats()
        engine.create_table(TABLE_NAME, tuple_size=TUPLE_SIZE)

    # ------------------------------------------------------------------
    def load(self, batch_size: int = 256) -> None:
        """Populate the table (YCSB's load phase), batched per txn."""
        engine = self.engine
        for start in range(0, self.num_tuples, batch_size):
            keys = range(start, min(start + batch_size, self.num_tuples))

            def body(txn):
                for key in keys:
                    engine.insert(txn, TABLE_NAME, key, self._tuple_value(key))

            engine.execute(body)

    def _tuple_value(self, key: int) -> bytes:
        # 4 B key prefix + ten 100 B "string" columns, deterministic.
        columns = b"".join(
            bytes([(key + column) % 251]) * COLUMN_SIZE
            for column in range(NUM_COLUMNS)
        )
        value = key.to_bytes(4, "big") + columns
        # Pad the 4 + 10x100 B layout out to the full tuple size.
        return value.ljust(TUPLE_SIZE, b"\0")[:TUPLE_SIZE]

    # ------------------------------------------------------------------
    def run_one(self) -> OpKind:
        """Execute one transaction of the configured mix."""
        key = self._keys.next()
        if self.rng.random() < self.mix.read_fraction:
            self._read_txn(key)
            self.stats.reads += 1
            return OpKind.READ
        self._update_txn(key, self.rng.randrange(NUM_COLUMNS))
        self.stats.updates += 1
        return OpKind.UPDATE

    def _read_txn(self, key: int) -> bytes | None:
        engine = self.engine
        try:
            return engine.execute(lambda txn: engine.read(txn, TABLE_NAME, key))
        except TransactionAborted:
            self.stats.aborts += 1
            return None

    def _update_txn(self, key: int, column: int) -> None:
        engine = self.engine
        fresh = bytes([self.rng.randrange(256)]) * COLUMN_SIZE

        def body(txn):
            value = engine.read(txn, TABLE_NAME, key)
            if value is None:
                return
            offset = 4 + column * COLUMN_SIZE
            updated = value[:offset] + fresh + value[offset + COLUMN_SIZE:]
            engine.update(txn, TABLE_NAME, key, updated)

        try:
            engine.execute(body)
        except TransactionAborted:
            self.stats.aborts += 1

    def run(self, operations: int) -> YcsbEngineStats:
        for _ in range(operations):
            self.run_one()
        return self.stats

    # ------------------------------------------------------------------
    def verify_tuple(self, key: int) -> bool:
        """Check a tuple's key prefix survived all updates intact."""
        engine = self.engine
        value = engine.execute(lambda txn: engine.read(txn, TABLE_NAME, key))
        if value is None:
            return False
        return int.from_bytes(value[:4], "big") == key
