"""Workloads: YCSB, TPC-C, Zipfian generation, and trace replay."""

from .tenancy import MultiTenantWorkload, TenantAccess, TenantSpec
from .tpcc import GB_PER_WAREHOUSE, PageAccess, TpccWorkload
from .tpcc_engine import TpccEngine, TpccStats
from .ycsb_engine import YcsbEngine, YcsbEngineStats
from .trace import Trace
from .ycsb import (
    COLUMN_SIZE,
    MIXES,
    NUM_COLUMNS,
    TUPLE_SIZE,
    TUPLES_PER_PAGE,
    Operation,
    OpKind,
    YCSB_BA,
    YCSB_RO,
    YCSB_WH,
    YcsbMix,
    YcsbWorkload,
)
from .zipf import (
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    nurand,
    scramble,
    zeta,
)

__all__ = [
    "COLUMN_SIZE",
    "GB_PER_WAREHOUSE",
    "MIXES",
    "MultiTenantWorkload",
    "NUM_COLUMNS",
    "Operation",
    "OpKind",
    "PageAccess",
    "ScrambledZipfianGenerator",
    "TenantAccess",
    "TenantSpec",
    "Trace",
    "TpccEngine",
    "TpccStats",
    "TpccWorkload",
    "TUPLES_PER_PAGE",
    "TUPLE_SIZE",
    "UniformGenerator",
    "YCSB_BA",
    "YCSB_RO",
    "YCSB_WH",
    "YcsbEngine",
    "YcsbEngineStats",
    "YcsbMix",
    "YcsbWorkload",
    "ZipfianGenerator",
    "nurand",
    "scramble",
    "zeta",
]
