"""TPC-C workload [35] as a buffer-access pattern generator (§6.1).

The paper drives its buffer managers with TPC-C configured at 350
warehouses (~100 GB) and measures buffer-manager operations per second.
This module reproduces TPC-C's *access pattern*: the five transaction
types with their standard mix (NewOrder 45%, Payment 43%, OrderStatus
4%, Delivery 4%, StockLevel 4%), the standard non-uniform key
distributions (NURand), per-table row sizes, and append-style inserts
into the history/orders/order-line regions.  Transactions involving
modifications account for 88% of the mix, as the paper notes.

Each transaction expands into a sequence of page accesses
(:class:`PageAccess`), which the harness feeds to a buffer manager.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from ..hardware.specs import PAGE_SIZE, SimulationScale
from .zipf import nurand

#: Paper scale: 350 warehouses ≈ 100 GB.
GB_PER_WAREHOUSE = 100.0 / 350.0

#: Approximate row sizes in bytes (TPC-C spec appendix).
ROW_SIZES = {
    "warehouse": 89,
    "district": 95,
    "customer": 655,
    "history": 46,
    "orders": 24,
    "new_order": 8,
    "order_line": 54,
    "stock": 306,
    "item": 82,
}

#: Fraction of the database's bytes per table (steady state, order-line
#: region grown; item is shared across warehouses).
TABLE_FRACTIONS = {
    "stock": 0.40,
    "customer": 0.26,
    "order_line": 0.21,
    "item": 0.07,
    "history": 0.03,
    "orders": 0.02,
    "new_order": 0.003,
    "district": 0.004,
    "warehouse": 0.003,
}

#: Standard transaction mix.
TXN_MIX = (
    ("new_order", 0.45),
    ("payment", 0.43),
    ("order_status", 0.04),
    ("delivery", 0.04),
    ("stock_level", 0.04),
)


@dataclass(frozen=True)
class PageAccess:
    """One page-level access produced by a transaction."""

    page_id: int
    offset: int
    nbytes: int
    is_write: bool


class _TableRegion:
    """A contiguous page range holding one table's rows."""

    __slots__ = ("name", "base_page", "num_pages", "row_size", "rows_per_page",
                 "num_rows")

    def __init__(self, name: str, base_page: int, num_pages: int,
                 row_size: int) -> None:
        self.name = name
        self.base_page = base_page
        self.num_pages = num_pages
        self.row_size = row_size
        self.rows_per_page = max(1, PAGE_SIZE // row_size)
        self.num_rows = num_pages * self.rows_per_page

    def access(self, row: int, is_write: bool) -> PageAccess:
        row %= self.num_rows
        page = self.base_page + row // self.rows_per_page
        offset = (row % self.rows_per_page) * self.row_size
        return PageAccess(page, offset, self.row_size, is_write)


class _GrowingRegion:
    """An append-only table whose pages are allocated as rows arrive.

    TPC-C's orders/order-line/history/new-order tables grow for the
    whole run; the resulting stream of freshly dirtied pages is what
    keeps the SSD busy on write-heavy mixes (new pages must eventually
    be written down).  Page ids are drawn from a shared monotonically
    increasing counter so regions interleave without overlapping.
    """

    __slots__ = ("name", "row_size", "rows_per_page", "pages", "_next_row",
                 "_alloc")

    def __init__(self, name: str, row_size: int, alloc) -> None:
        self.name = name
        self.row_size = row_size
        self.rows_per_page = max(1, PAGE_SIZE // row_size)
        self.pages: list[int] = []
        self._next_row = 0
        self._alloc = alloc

    @property
    def num_rows(self) -> int:
        """Rows inserted so far (at least one page's worth for readers)."""
        return max(self._next_row, self.rows_per_page)

    def append(self) -> PageAccess:
        row = self._next_row
        self._next_row += 1
        page_index = row // self.rows_per_page
        while page_index >= len(self.pages):
            self.pages.append(self._alloc())
        offset = (row % self.rows_per_page) * self.row_size
        return PageAccess(self.pages[page_index], offset, self.row_size,
                          is_write=True)

    def access(self, row: int, is_write: bool) -> PageAccess:
        """Access a previously inserted row (reads wrap over history)."""
        row %= self.num_rows
        page_index = row // self.rows_per_page
        while page_index >= len(self.pages):
            self.pages.append(self._alloc())
        offset = (row % self.rows_per_page) * self.row_size
        return PageAccess(self.pages[page_index], offset, self.row_size,
                          is_write)


class TpccWorkload:
    """TPC-C access-pattern generator sized in (paper-scale) gigabytes."""

    def __init__(self, db_gigabytes: float, scale: SimulationScale,
                 seed: int = 1) -> None:
        if db_gigabytes <= 0:
            raise ValueError("db_gigabytes must be positive")
        self.db_gigabytes = db_gigabytes
        self.scale = scale
        self.rng = random.Random(seed)
        self.warehouses = max(1, int(round(db_gigabytes / GB_PER_WAREHOUSE)))
        total_pages = max(len(TABLE_FRACTIONS), scale.pages(db_gigabytes))
        growing = ("orders", "order_line", "history", "new_order")
        self._next_page = 0

        def alloc() -> int:
            page = self._next_page
            self._next_page += 1
            return page

        self.regions: dict[str, _TableRegion | _GrowingRegion] = {}
        for name, fraction in TABLE_FRACTIONS.items():
            pages = max(1, int(round(total_pages * fraction)))
            if name in growing:
                region = _GrowingRegion(name, ROW_SIZES[name], alloc)
                # Seed the initial database content at the configured size.
                region.pages = [alloc() for _ in range(pages)]
                region._next_row = pages * region.rows_per_page
                self.regions[name] = region
            else:
                base = self._next_page
                self._next_page += pages
                self.regions[name] = _TableRegion(name, base, pages,
                                                  ROW_SIZES[name])
        self.initial_pages = self._next_page
        self.transactions_generated = 0
        self.modifying_transactions = 0

    # ------------------------------------------------------------------
    # Key selection helpers (standard TPC-C randomness)
    # ------------------------------------------------------------------
    def _warehouse_row(self) -> int:
        return self.rng.randrange(self.warehouses)

    def _district_row(self, warehouse: int) -> int:
        return warehouse * 10 + self.rng.randrange(10)

    def _customer_row(self, warehouse: int, district: int) -> int:
        customer = nurand(self.rng, 1023, 0, 2999)
        return (warehouse * 10 + district % 10) * 3000 + customer

    def _item_row(self) -> int:
        return nurand(self.rng, 8191, 0, 99_999)

    def _stock_row(self, warehouse: int, item_row: int) -> int:
        return warehouse * 100_000 + item_row

    @property
    def num_pages(self) -> int:
        """Pages allocated so far (grows as insert transactions run)."""
        return self._next_page

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def next_transaction(self) -> list[PageAccess]:
        """Generate one transaction's page accesses."""
        draw = self.rng.random()
        cumulative = 0.0
        kind = TXN_MIX[-1][0]
        for name, weight in TXN_MIX:
            cumulative += weight
            if draw < cumulative:
                kind = name
                break
        accesses = getattr(self, f"_txn_{kind}")()
        self.transactions_generated += 1
        if kind in ("new_order", "payment", "delivery"):
            self.modifying_transactions += 1
        return accesses

    def _txn_new_order(self) -> list[PageAccess]:
        r = self.regions
        warehouse = self._warehouse_row()
        district = self._district_row(warehouse)
        ops = [
            r["warehouse"].access(warehouse, is_write=False),
            r["district"].access(district, is_write=False),
            r["district"].access(district, is_write=True),  # next_o_id bump
            r["customer"].access(self._customer_row(warehouse, district),
                                 is_write=False),
        ]
        ol_cnt = self.rng.randint(5, 15)
        for _ in range(ol_cnt):
            item = self._item_row()
            # 1% of order lines are supplied by a remote warehouse.
            supply = warehouse
            if self.warehouses > 1 and self.rng.random() < 0.01:
                supply = self._warehouse_row()
            ops.append(r["item"].access(item, is_write=False))
            stock = self._stock_row(supply, item)
            ops.append(r["stock"].access(stock, is_write=False))
            ops.append(r["stock"].access(stock, is_write=True))
            ops.append(r["order_line"].append())
        ops.append(r["orders"].append())
        ops.append(r["new_order"].append())
        return ops

    def _txn_payment(self) -> list[PageAccess]:
        r = self.regions
        warehouse = self._warehouse_row()
        district = self._district_row(warehouse)
        # 15% of payments are for a customer of a remote warehouse.
        cust_warehouse = warehouse
        if self.warehouses > 1 and self.rng.random() < 0.15:
            cust_warehouse = self._warehouse_row()
        customer = self._customer_row(cust_warehouse, district)
        ops = [
            r["warehouse"].access(warehouse, is_write=False),
            r["warehouse"].access(warehouse, is_write=True),  # ytd
            r["district"].access(district, is_write=False),
            r["district"].access(district, is_write=True),
        ]
        if self.rng.random() < 0.60:
            # Lookup by last name: scan a handful of candidate customers.
            for _ in range(self.rng.randint(2, 4)):
                ops.append(r["customer"].access(
                    self._customer_row(cust_warehouse, district), is_write=False
                ))
        ops.append(r["customer"].access(customer, is_write=False))
        ops.append(r["customer"].access(customer, is_write=True))
        ops.append(r["history"].append())
        return ops

    def _txn_order_status(self) -> list[PageAccess]:
        r = self.regions
        warehouse = self._warehouse_row()
        district = self._district_row(warehouse)
        customer = self._customer_row(warehouse, district)
        ops = [r["customer"].access(customer, is_write=False)]
        order = self.rng.randrange(r["orders"].num_rows)
        ops.append(r["orders"].access(order, is_write=False))
        for i in range(self.rng.randint(5, 15)):
            ops.append(r["order_line"].access(order * 10 + i, is_write=False))
        return ops

    def _txn_delivery(self) -> list[PageAccess]:
        r = self.regions
        warehouse = self._warehouse_row()
        ops: list[PageAccess] = []
        for district_index in range(10):
            district = warehouse * 10 + district_index
            new_order = self.rng.randrange(r["new_order"].num_rows)
            ops.append(r["new_order"].access(new_order, is_write=False))
            ops.append(r["new_order"].access(new_order, is_write=True))  # delete
            order = self.rng.randrange(r["orders"].num_rows)
            ops.append(r["orders"].access(order, is_write=False))
            ops.append(r["orders"].access(order, is_write=True))
            for i in range(self.rng.randint(5, 15)):
                ops.append(r["order_line"].access(order * 10 + i, is_write=True))
            customer = self._customer_row(warehouse, district)
            ops.append(r["customer"].access(customer, is_write=True))
        return ops

    def _txn_stock_level(self) -> list[PageAccess]:
        r = self.regions
        warehouse = self._warehouse_row()
        district = self._district_row(warehouse)
        ops = [r["district"].access(district, is_write=False)]
        # Examine the stock of items on the last 20 orders.
        for _ in range(20):
            order_line = self.rng.randrange(r["order_line"].num_rows)
            ops.append(r["order_line"].access(order_line, is_write=False))
            ops.append(r["stock"].access(
                self._stock_row(warehouse, self._item_row()), is_write=False
            ))
        return ops

    def page_popularity(self, samples: int = 3_000) -> list[int]:
        """Pages ranked hottest-first, estimated from a sibling generator.

        ``samples`` counts transactions, each of which expands to many
        page accesses.  Used for warm-start buffer priming.
        """
        sibling = TpccWorkload(self.db_gigabytes, self.scale, seed=987_654)
        counts: dict[int, int] = {}
        for _ in range(samples):
            for access in sibling.next_transaction():
                counts[access.page_id] = counts.get(access.page_id, 0) + 1
        ranked = sorted(counts, key=counts.get, reverse=True)
        seen = set(ranked)
        ranked.extend(p for p in range(self.num_pages) if p not in seen)
        return ranked

    # ------------------------------------------------------------------
    def accesses(self, num_transactions: int) -> Iterator[PageAccess]:
        """Flat stream of page accesses for ``num_transactions`` txns."""
        for _ in range(num_transactions):
            yield from self.next_transaction()

    @property
    def write_fraction_estimate(self) -> float:
        """Rough fraction of accesses that are writes (for sanity tests)."""
        return 0.4
