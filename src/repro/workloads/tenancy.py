"""Multi-tenant workload specs and the deterministic stream interleaver.

The workload-side half of the multi-tenant story (ROADMAP item 2):

* :class:`TenantSpec` — one tenant's traffic profile: a YCSB mix or the
  TPC-C generator, zipf skew, database size, arrival weight, optional
  think time, and an optional per-tenant policy preset (Table 3 name),
* :class:`MultiTenantWorkload` — lays the tenants' databases out in
  disjoint page ranges (one uniform stride, sized with growth headroom
  so TPC-C's append-only regions never cross into a neighbour's range)
  and merges the N per-tenant op streams into one totally-ordered
  stream of :class:`TenantAccess` records via a seeded weighted
  interleaver.

Determinism is the contract everything downstream leans on: the same
specs and seed produce the same interleaved stream op for op, because
the interleaver draws tenants from its own ``random.Random`` and each
tenant's generator draws from its own seeded RNGs — no draw order
depends on wall clock, hashing, or thread scheduling.  Think time is a
spec-level annotation the bench harness charges as CPU service time
(the simulation has no idle waiting, so "thinking" models a slower
arrival rate, not a sleeping client).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from .tpcc import TpccWorkload
from .ycsb import (
    COLUMN_SIZE,
    MIXES,
    TUPLE_SIZE,
    TUPLES_PER_PAGE,
    YcsbWorkload,
)

__all__ = [
    "MultiTenantWorkload",
    "TenantAccess",
    "TenantSpec",
]


@dataclass(frozen=True)
class TenantAccess:
    """One tenant-tagged page access of the merged stream."""

    tenant_id: int
    page_id: int
    offset: int
    nbytes: int
    is_write: bool


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic profile (frozen and picklable).

    ``kind`` selects the generator: ``"ycsb"`` uses ``mix``/``skew``
    over a table sized by ``db_gigabytes``; ``"tpcc"`` runs the TPC-C
    generator at that database size (``mix``/``skew`` are ignored).
    ``weight`` is the tenant's arrival share in the interleaved stream;
    ``think_time_ns`` is extra CPU service charged per op by the
    harness; ``policy_preset`` optionally pins the tenant to a Table 3
    policy via per-tenant overrides in the migration engine.
    """

    name: str
    kind: str = "ycsb"
    #: YCSB mix name ("YCSB-RO" / "YCSB-BA" / "YCSB-WH").
    mix: str = "YCSB-BA"
    skew: float = 0.3
    db_gigabytes: float = 1.0
    weight: float = 1.0
    think_time_ns: float = 0.0
    seed: int = 1
    policy_preset: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("ycsb", "tpcc"):
            raise ValueError(f"unknown tenant workload kind {self.kind!r}")
        if self.kind == "ycsb" and self.mix not in MIXES:
            raise ValueError(f"unknown YCSB mix {self.mix!r}")
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")
        if self.db_gigabytes <= 0:
            raise ValueError("db_gigabytes must be positive")
        if self.think_time_ns < 0:
            raise ValueError("think_time_ns must be >= 0")


def _stride_for(max_pages: int) -> int:
    """Tenant page stride: the next power of two above twice the largest
    tenant's page count — 2× headroom for TPC-C's growing regions, and a
    power of two so the page→tenant division stays cheap."""
    stride = 1
    target = max(2, 2 * max_pages)
    while stride < target:
        stride <<= 1
    return stride


class _YcsbStream:
    """Adapter: one YCSB tenant as an endless tenant-access stream."""

    def __init__(self, spec: TenantSpec, num_tuples: int) -> None:
        self.workload = YcsbWorkload(
            num_tuples, mix=MIXES[spec.mix], skew=spec.skew, seed=spec.seed
        )
        self.num_pages = self.workload.num_pages

    def next(self) -> tuple[int, int, int, bool]:
        op = self.workload.next_op()
        page = self.workload.page_of(op.key)
        offset = self.workload.offset_of(op.key, op.column)
        if op.is_write:
            return page, offset, COLUMN_SIZE, True
        return page, offset, TUPLE_SIZE, False

    def page_popularity(self) -> list[int]:
        return self.workload.page_popularity()


class _TpccStream:
    """Adapter: one TPC-C tenant, unrolled one page access at a time."""

    def __init__(self, spec: TenantSpec, scale) -> None:
        self.workload = TpccWorkload(spec.db_gigabytes, scale, seed=spec.seed)
        self.num_pages = self.workload.num_pages
        self._pending: list = []

    def next(self) -> tuple[int, int, int, bool]:
        while not self._pending:
            self._pending = list(self.workload.next_transaction())
        access = self._pending.pop(0)
        return access.page_id, access.offset, access.nbytes, access.is_write

    def page_popularity(self) -> list[int]:
        return self.workload.page_popularity()


class MultiTenantWorkload:
    """N tenant streams merged into one deterministic total order.

    Tenant ``i``'s pages live at ``[i * page_stride, i * page_stride +
    num_pages_i)``; the shared stride (with headroom) is what
    :class:`~repro.core.tenancy.TenancyConfig` uses for O(1) page→tenant
    resolution.  Each :meth:`next_access` first draws the serving tenant
    from the interleaver RNG (weights = arrival shares), then advances
    only that tenant's generator — so one tenant's draw history is
    independent of the others' traffic.
    """

    def __init__(self, specs, scale, seed: int = 1) -> None:
        specs = tuple(specs)
        if not specs:
            raise ValueError("at least one tenant spec is required")
        self.specs = specs
        self.scale = scale
        self.seed = seed
        self.rng = random.Random(seed)
        self._streams = []
        for spec in specs:
            if spec.kind == "tpcc":
                self._streams.append(_TpccStream(spec, scale))
            else:
                # Same sizing rule as the single-stream bench cells:
                # one table filling the tenant's database allotment.
                num_tuples = max(1, scale.pages(spec.db_gigabytes)) \
                    * TUPLES_PER_PAGE
                self._streams.append(_YcsbStream(spec, num_tuples))
        self.page_stride = _stride_for(
            max(stream.num_pages for stream in self._streams)
        )
        total = sum(spec.weight for spec in specs)
        self._cum_weights = []
        acc = 0.0
        for spec in specs:
            acc += spec.weight / total
            self._cum_weights.append(acc)
        self._cum_weights[-1] = 1.0  # guard against float drift

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    @property
    def num_tenants(self) -> int:
        return len(self.specs)

    def base_page(self, tenant_id: int) -> int:
        return tenant_id * self.page_stride

    def initial_page_ids(self) -> Iterator[int]:
        """Global ids of every page to pre-allocate, tenant by tenant."""
        for tenant_id, stream in enumerate(self._streams):
            base = self.base_page(tenant_id)
            for page in range(stream.num_pages):
                yield base + page

    # ------------------------------------------------------------------
    # The interleaved stream
    # ------------------------------------------------------------------
    def _draw_tenant(self) -> int:
        point = self.rng.random()
        for tenant_id, bound in enumerate(self._cum_weights):
            if point < bound:
                return tenant_id
        return len(self._cum_weights) - 1  # pragma: no cover - guard above

    def next_access(self) -> TenantAccess:
        tenant_id = self._draw_tenant()
        page, offset, nbytes, is_write = self._streams[tenant_id].next()
        return TenantAccess(
            tenant_id=tenant_id,
            page_id=self.base_page(tenant_id) + page,
            offset=offset,
            nbytes=nbytes,
            is_write=is_write,
        )

    def accesses(self, count: int) -> Iterator[TenantAccess]:
        for _ in range(count):
            yield self.next_access()

    # ------------------------------------------------------------------
    # Priming support
    # ------------------------------------------------------------------
    def page_popularity(self) -> list[int]:
        """Global page ids ranked hottest-first across all tenants.

        Per-tenant rankings merge by *virtual time*: the ``k``-th page
        of a tenant with arrival weight ``w`` lands at ``(k + 1) / w``,
        so heavier tenants place proportionally more of their hot pages
        ahead.  Tenant index breaks ties, keeping the merge a pure
        function of the specs.
        """
        merged: list[tuple[float, int, int]] = []
        for tenant_id, (spec, stream) in enumerate(
            zip(self.specs, self._streams)
        ):
            base = self.base_page(tenant_id)
            for rank, page in enumerate(stream.page_popularity()):
                merged.append(((rank + 1) / spec.weight, tenant_id, base + page))
        merged.sort()
        return [page for _, _, page in merged]
