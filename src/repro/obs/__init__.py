"""First-class observability: metrics, sim-latency histograms, tracing.

The package turns the PR-1 :class:`~repro.core.events.EventBus` into a
full telemetry surface:

* :mod:`repro.obs.metrics` — thread-safe Counter/Gauge/Histogram
  primitives behind a :class:`MetricsRegistry`; histograms use
  log2-scaled simulated-nanosecond buckets,
* :mod:`repro.obs.hub` — the :class:`MetricsHub` bus subscriber that
  derives per-tier hit/miss/eviction rates, occupancy and dirty-ratio
  gauges (sampled on sim-clock epochs), and per-op simulated-latency
  histograms split by outcome (DRAM hit / NVM hit / SSD fetch),
* :mod:`repro.obs.tracer` — a sampling page-lifecycle tracer recording
  install → migrate → evict → write-back spans with sim timestamps,
* :mod:`repro.obs.export` — Prometheus text exposition and JSONL
  snapshot streams, plus deterministic snapshot merging for per-worker
  results coming back from the process-pool executor,
* :mod:`repro.obs.decisions` — a :class:`DecisionRecorder` probing the
  migration engine's admit/deny decisions and eviction victims, with
  hash-sampled decision spans and per-policy counters,
* :mod:`repro.obs.server` — :class:`MetricsServer`, a stdlib HTTP
  endpoint serving the Prometheus exporter live mid-run.

Every subscriber implements the bus's ``apply_event`` fast-path
protocol, so attaching observability never knocks the bus off its
allocation-free emission path.
"""

from .decisions import DecisionRecorder
from .export import (
    METRIC_HELP,
    escape_label_value,
    merge_snapshots,
    prometheus_text,
    snapshot_jsonl_lines,
    write_jsonl,
    write_prometheus,
)
from .hub import MetricsHub
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .server import MetricsServer
from .tracer import PageLifecycleTracer, TraceSpan

__all__ = [
    "Counter",
    "DecisionRecorder",
    "Gauge",
    "Histogram",
    "METRIC_HELP",
    "MetricsHub",
    "MetricsRegistry",
    "MetricsServer",
    "PageLifecycleTracer",
    "TraceSpan",
    "escape_label_value",
    "merge_snapshots",
    "prometheus_text",
    "snapshot_jsonl_lines",
    "write_jsonl",
    "write_prometheus",
]
