"""Exporters: Prometheus text exposition and JSONL snapshot streams.

Two formats, one registry:

* :func:`prometheus_text` renders a
  :class:`~repro.obs.metrics.MetricsRegistry` in the Prometheus text
  exposition format (``# TYPE`` per family, cumulative ``_bucket``
  series with ``le`` labels, ``_sum``/``_count`` per histogram),
* :func:`snapshot_jsonl_lines` flattens a
  :meth:`~repro.obs.hub.MetricsHub.snapshot` payload into one JSON
  object per line — one ``series`` record per metric and one ``epoch``
  record per gauge-sampling tick — ready to append to a ``.jsonl``
  stream across cells.

Everything renders with sorted keys and sorted series, so two registries
holding the same data produce byte-identical output — the property the
``--jobs 1`` vs ``--jobs N`` determinism tests pin down.
"""

from __future__ import annotations

import json
from pathlib import Path

from .metrics import BUCKET_BOUNDS, Histogram, MetricsRegistry

#: ``# HELP`` text per metric family.  Families without an entry render
#: with no HELP line (valid exposition); keeping the catalogue here —
#: not on the series objects — keeps the hot-path metric types slim.
METRIC_HELP: dict[str, str] = {
    "buffer_ops_total": "Logical buffer operations by kind.",
    "buffer_misses_total": "Accesses served from the SSD store.",
    "tier_hits_total": "Accesses served from a buffered tier.",
    "tier_installs_total": "Pages installed into a tier.",
    "tier_evictions_total": "Pages evicted from a tier.",
    "tier_write_backs_total": "Dirty pages written back from a tier.",
    "clean_drops_total": "Clean pages dropped without write-back.",
    "dirty_page_flushes_total": "Checkpoint-driven dirty page flushes.",
    "migrations_total": "Page migrations by direction and tier edge.",
    "op_latency_ns": "Simulated per-operation latency by outcome.",
    "tier_occupancy_ratio": "Fraction of a tier's capacity in use.",
    "tier_dirty_ratio": "Fraction of a tier's pages that are dirty.",
    "tenant_ops_total": "Logical buffer operations by tenant and kind.",
    "tenant_op_latency_ns":
        "Simulated per-operation latency by tenant and kind.",
    "tenant_admission_considerations_total":
        "Admission-queue consultations by tenant.",
    "tenant_admissions_total": "Admission-queue admissions by tenant.",
    "faults_injected_total": "Faults injected by device and kind.",
    "device_retries_total": "Device retries after transient faults.",
    "torn_writes_detected_total": "Torn writes detected at crash time.",
    "migration_decisions_total":
        "Migration-engine decisions by op, edge, outcome, and policy.",
    "eviction_victims_total":
        "Eviction victims by tier and dirty/clean class.",
    "admission_queue_depth":
        "Admission-queue depth observed at each consultation.",
}

#: Label-value escaping per the exposition format: backslash, quote,
#: and newline must be escaped inside the double-quoted value.
_LABEL_ESCAPES = str.maketrans({
    "\\": r"\\",
    '"': r"\"",
    "\n": r"\n",
})


def escape_label_value(value: str) -> str:
    """Escape one label value for the text exposition format."""
    return str(value).translate(_LABEL_ESCAPES)


def _format_value(value: float) -> str:
    """Render a sample value: integral floats without the trailing .0."""
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_bound(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    return _format_value(bound)


def _labels_text(labels: dict[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [(key, labels[key]) for key in sorted(labels)] + list(extra)
    if not pairs:
        return ""
    rendered = ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in pairs
    )
    return f"{{{rendered}}}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    families: dict[str, list] = {}
    kinds: dict[str, str] = {}
    for series in registry.series():
        families.setdefault(series.name, []).append(series)
        kinds[series.name] = series.kind
    lines: list[str] = []
    for name in sorted(families):
        help_text = METRIC_HELP.get(name)
        if help_text is not None:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kinds[name]}")
        for series in families[name]:
            if isinstance(series, Histogram):
                counts = series.bucket_counts()
                cumulative = 0
                for bound, count in zip(BUCKET_BOUNDS, counts):
                    cumulative += count
                    labels = _labels_text(
                        series.labels, (("le", _format_bound(bound)),)
                    )
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                labels = _labels_text(series.labels)
                lines.append(f"{name}_sum{labels} {_format_value(series.sum)}")
                lines.append(f"{name}_count{labels} {cumulative}")
            else:
                labels = _labels_text(series.labels)
                lines.append(f"{name}{labels} {_format_value(series.value)}")
    return "\n".join(lines) + "\n"


def write_prometheus(path: str | Path, registry: MetricsRegistry) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prometheus_text(registry))
    return path


# ----------------------------------------------------------------------
# JSONL snapshot streams
# ----------------------------------------------------------------------
def _dump(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def snapshot_jsonl_lines(snapshot: dict, label: str | None = None) -> list[str]:
    """Flatten one hub snapshot (``registry`` + ``epochs``) into JSONL lines.

    ``label`` names the producing run/cell so streams from many cells
    can share one file and still be separated downstream.
    """
    lines = []
    registry = snapshot.get("registry", {})
    for key in sorted(registry):
        entry = registry[key]
        record = {
            "record": "series",
            "series": key,
            "kind": entry["kind"],
            "state": entry["state"],
        }
        if label is not None:
            record["cell"] = label
        lines.append(_dump(record))
    for epoch in snapshot.get("epochs", ()):
        record = {"record": "epoch", **epoch}
        if label is not None:
            record["cell"] = label
        lines.append(_dump(record))
    return lines


def write_jsonl(path: str | Path, lines: list[str]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


# ----------------------------------------------------------------------
# Deterministic merging
# ----------------------------------------------------------------------
def merge_snapshots(snapshots) -> MetricsRegistry:
    """Fold registry snapshots (in the given order) into one registry.

    Counters and histogram buckets sum; gauges keep the last merged
    value.  The executor returns results in submission order regardless
    of ``--jobs``, so merging per-cell snapshots in result order yields
    the same registry — and the same exported bytes — at any job count.
    """
    merged = MetricsRegistry()
    for snapshot in snapshots:
        if snapshot is None:
            continue
        registry = snapshot.get("registry", snapshot)
        merged.merge_snapshot(registry)
    return merged
