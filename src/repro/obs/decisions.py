"""Decision tracing: why the migration engine moved (or kept) a page.

Aggregate counters say *what* happened — promotions, admissions,
evictions per tier.  This module records *why*: every probabilistic
tier-crossing decision (§3's ``<D_r, D_w, N_r, N_w>`` draws and HyMem's
admission-queue consultations) plus every eviction victim choice, with
the policy inputs in hand at the moment of the decision.

A :class:`DecisionRecorder` taps two sources at once:

* the :attr:`~repro.core.migration.MigrationEngine.probe` hook — the
  engine calls it once per :meth:`~repro.core.migration.MigrationEngine.decide`
  *after* the outcome is fixed, passing the edge, op, page, resolved
  policy, the admission queue it consulted (or None), and the verdict.
  The probe contract is strictly read-only: the recorder never draws
  from the engine's RNG and never mutates the queue, so attaching it
  cannot perturb the decision stream (the golden-figure gate proves
  this byte-for-byte);
* the event bus, via the allocation-free ``apply_event`` protocol, for
  ``EVICT`` events — capturing the victim class (dirty vs clean) and
  the tenant the bus register names at that moment.

Every decision lands in the recorder's own
:class:`~repro.obs.metrics.MetricsRegistry` (complete per-policy
decision histograms:
``migration_decisions_total{op,edge,outcome,policy}``,
``admission_queue_depth``, ``eviction_victims_total{tier,victim_class}``).
A deterministic page-id hash — the same multiplicative hash the
:class:`~repro.obs.tracer.PageLifecycleTracer` uses, no RNG state —
additionally samples full decision *spans* (page, tier edge, policy
knobs, queue depth and lazy-admission counter state, tenant), capped at
``max_spans`` with an explicit drop counter.  When a
:class:`~repro.obs.hub.MetricsHub` is live for the same window, the
harness points its ``decision_source`` at the recorder and the
registries merge exactly once at hub finalize — so the Prometheus and
JSONL exporters see decision series with no extra plumbing.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from ..core.events import EventType
from ..core.migration import MigrationOp
from .metrics import MetricsRegistry
from .tracer import _HASH_MASK, _HASH_MULT

#: The engine op values, frozen here so span payloads stay stable even
#: if the enum gains members.
_OP_LABELS = {
    MigrationOp.PROMOTE_READ: "promote_read",
    MigrationOp.PROMOTE_WRITE: "promote_write",
    MigrationOp.FETCH_ADMIT: "fetch_admit",
    MigrationOp.EVICT_ADMIT: "evict_admit",
    MigrationOp.FLUSH_ADMIT: "flush_admit",
}


def _policy_label(policy) -> str:
    """A stable label for a policy: its name, or its knob tuple."""
    name = getattr(policy, "name", "")
    if name:
        return name
    return (f"<{policy.d_r:g},{policy.d_w:g},"
            f"{policy.n_r:g},{policy.n_w:g}>")


class DecisionRecorder:
    """Records migration/admission/eviction decisions for one window.

    ``fraction`` controls *span* sampling only — the per-policy decision
    counters are always complete (they are cheap aggregate increments);
    spans carry the full policy-input payload and are the expensive
    part, so they sample by page-id hash exactly like the lifecycle
    tracer: the same pages are sampled on every run and in every worker
    process, which keeps parallel runs byte-identical to serial ones.
    """

    def __init__(self, fraction: float = 1.0,
                 max_spans: int = 4096,
                 registry: MetricsRegistry | None = None) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        self.fraction = fraction
        self.max_spans = max_spans
        self._threshold = int(fraction * (_HASH_MASK + 1))
        self.registry = registry or MetricsRegistry()
        self.spans: list[dict] = []
        self.spans_dropped = 0
        self._lock = threading.Lock()
        self._bus = None
        self._engine = None
        self._prev_probe = None
        self._cost = None
        self._queue_depth_hist = self.registry.histogram(
            "admission_queue_depth")
        self._decision_counters: dict[tuple, object] = {}
        self._victim_counters: dict[tuple, object] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, bm) -> "DecisionRecorder":
        """Install the engine probe and subscribe for eviction events."""
        if self._engine is not None:
            raise RuntimeError("recorder is already attached")
        self._engine = bm.engine
        self._prev_probe = bm.engine.probe
        bm.engine.probe = self
        self._cost = bm.hierarchy.cost
        self._bus = bm.events
        self._bus.subscribe(self)
        return self

    def detach(self) -> None:
        """Restore the previous probe and unsubscribe from the bus."""
        if self._engine is not None:
            self._engine.probe = self._prev_probe
            self._engine = None
            self._prev_probe = None
        if self._bus is not None:
            self._bus.unsubscribe(self)
            self._bus = None

    # ------------------------------------------------------------------
    # Engine probe protocol (called after every decide())
    # ------------------------------------------------------------------
    def record_decision(self, op, edge, page_id, admitted, policy,
                        queue) -> None:
        op_label = _OP_LABELS.get(op, str(op))
        edge_label = f"{edge.src.name}->{edge.dst.name}"
        outcome = "admitted" if admitted else "denied"
        policy_label = _policy_label(policy)
        key = (op_label, edge_label, outcome, policy_label)
        counter = self._decision_counters.get(key)
        if counter is None:
            counter = self.registry.counter("migration_decisions_total", {
                "op": op_label, "edge": edge_label,
                "outcome": outcome, "policy": policy_label,
            })
            self._decision_counters[key] = counter
        counter.inc()
        queue_depth = None
        queue_state = None
        if queue is not None:
            # Read-only introspection: len() and snapshot() take the
            # queue lock but never mutate FIFO or counter state.
            queue_depth = len(queue)
            considerations, admissions, rate = queue.snapshot()
            queue_state = {
                "considerations": considerations,
                "admissions": admissions,
                "admission_rate": rate,
            }
            self._queue_depth_hist.observe(queue_depth)
        if ((page_id * _HASH_MULT) & _HASH_MASK) >= self._threshold:
            return
        span = {
            "kind": "decision",
            "sim_ns": self._cost.total_ns if self._cost is not None else 0.0,
            "page": page_id,
            "op": op_label,
            "edge": edge_label,
            "admitted": admitted,
            "policy": policy_label,
            "knobs": {
                "d_r": policy.d_r, "d_w": policy.d_w,
                "n_r": policy.n_r, "n_w": policy.n_w,
            },
            "queue_depth": queue_depth,
            "queue_state": queue_state,
            "tenant": self._bus.tenant_id if self._bus is not None else 0,
        }
        with self._lock:
            if len(self.spans) < self.max_spans:
                self.spans.append(span)
            else:
                self.spans_dropped += 1

    # ------------------------------------------------------------------
    # Bus protocol (eviction victims)
    # ------------------------------------------------------------------
    def __call__(self, event) -> None:
        self.apply_event(event.type, event.page_id, event.tier, event.src,
                         event.dirty)

    def apply_op_batch(self, summary) -> None:
        """Bus batch path: no-op — batched hits decide nothing."""

    def apply_event(self, etype, page_id, tier, src, dirty) -> None:
        """Bus fast path: one identity test, evictions only."""
        if etype is not EventType.EVICT:
            return
        victim_class = "dirty" if dirty else "clean"
        tier_label = tier.name if tier is not None else "?"
        key = (tier_label, victim_class)
        counter = self._victim_counters.get(key)
        if counter is None:
            counter = self.registry.counter("eviction_victims_total", {
                "tier": tier_label, "victim_class": victim_class,
            })
            self._victim_counters[key] = counter
        counter.inc()
        if ((page_id * _HASH_MULT) & _HASH_MASK) >= self._threshold:
            return
        span = {
            "kind": "eviction",
            "sim_ns": self._cost.total_ns if self._cost is not None else 0.0,
            "page": page_id,
            "tier": tier_label,
            "victim_class": victim_class,
            "tenant": self._bus.tenant_id if self._bus is not None else 0,
        }
        with self._lock:
            if len(self.spans) < self.max_spans:
                self.spans.append(span)
            else:
                self.spans_dropped += 1

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def num_decisions(self) -> int:
        """Total decisions counted (complete, not span-sampled)."""
        return sum(c.value for c in self._decision_counters.values())

    def summary(self) -> dict:
        """Per-policy decision histogram digest, JSON-able and sorted."""
        decisions: dict[str, int] = {}
        for (op, edge, outcome, policy), counter in sorted(
                self._decision_counters.items()):
            decisions[f"{policy}/{op}/{edge}/{outcome}"] = counter.value
        victims = {
            f"{tier}/{victim_class}": counter.value
            for (tier, victim_class), counter in sorted(
                self._victim_counters.items())
        }
        return {
            "decisions": decisions,
            "eviction_victims": victims,
            "queue_depth_observations": self._queue_depth_hist.count,
            "spans_recorded": len(self.spans),
            "spans_dropped": self.spans_dropped,
            "sample_fraction": self.fraction,
        }

    def report(self) -> dict:
        """The run-result payload: sampled spans plus the digest."""
        with self._lock:
            spans = list(self.spans)
        return {"spans": spans, "summary": self.summary()}

    # ------------------------------------------------------------------
    # JSONL export
    # ------------------------------------------------------------------
    def jsonl_lines(self, label: str | None = None) -> list[str]:
        """One JSON object per sampled span (+ one trailing digest)."""
        lines = []
        with self._lock:
            spans = list(self.spans)
        for span in spans:
            record = {"record": "decision_span", **span}
            if label is not None:
                record["cell"] = label
            lines.append(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")))
        digest = {"record": "decision_summary", **self.summary()}
        if label is not None:
            digest["cell"] = label
        lines.append(json.dumps(digest, sort_keys=True,
                                separators=(",", ":")))
        return lines

    def write_jsonl(self, path: str | Path,
                    label: str | None = None) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = self.jsonl_lines(label)
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path


def decision_trace_jsonl_lines(trace: dict,
                               label: str | None = None) -> list[str]:
    """Flatten a ``RunResult.decision_trace`` payload into JSONL lines.

    The file-side twin of :meth:`DecisionRecorder.jsonl_lines` for
    traces that already crossed a process boundary as plain dicts.
    """
    lines = []
    for span in trace.get("spans", ()):
        record = {"record": "decision_span", **span}
        if label is not None:
            record["cell"] = label
        lines.append(json.dumps(record, sort_keys=True,
                                separators=(",", ":")))
    digest = {"record": "decision_summary", **trace.get("summary", {})}
    if label is not None:
        digest["cell"] = label
    lines.append(json.dumps(digest, sort_keys=True, separators=(",", ":")))
    return lines
