"""The MetricsHub: an event-bus subscriber that derives live metrics.

One hub attaches to one buffer manager for one measurement window and
projects the event stream onto a :class:`~repro.obs.metrics.MetricsRegistry`:

* **traffic counters** — ops by kind, hits per tier, misses, installs,
  evictions, write-backs, clean drops, flushes, and per-edge migrations,
* **per-op simulated latency** — each logical op's cost is bracketed by
  reading the shared :class:`~repro.hardware.simclock.CostAccumulator`
  total at consecutive ``OP_READ``/``OP_WRITE`` events; the delta lands
  in a log2 histogram split by outcome (``dram_hit`` / ``nvm_hit`` /
  ``ssd_fetch`` / any other tier's hit), so tail questions like "what
  was the p99 during the policy transient?" are answerable after the
  fact.  An op's latency includes the WAL/checkpoint work it triggered,
  which is charged before the next op begins,
* **epoch gauges** — whenever accumulated sim time crosses an epoch
  boundary the hub samples tier occupancy and dirty ratios, records the
  sample in an epoch series, and advances the hierarchy's
  :class:`~repro.hardware.simclock.SimClock` to the boundary, so the
  clock tracks observable sim progress.

The hub implements the bus's ``apply_event`` fast-path protocol, so the
bus stays on its allocation-free emission path while a hub is attached;
:meth:`detach` restores the exact pre-attach subscriber set.  Under
concurrent ``threading`` workers the histogram *counts* stay exact (one
observation per op event, by construction); outcome attribution of an
individual latency sample may be approximate across interleaved ops.
"""

from __future__ import annotations

from ..core.events import EventType
from ..hardware.simclock import FP_SCALE
from ..hardware.specs import Tier
from ..np_compat import np
from .metrics import Counter, Histogram, MetricsRegistry

#: Default epoch length for gauge sampling: 10 simulated milliseconds.
DEFAULT_EPOCH_NS = 10_000_000.0

#: Outcome label of a full miss (the access went to the SSD store).
MISS_OUTCOME = "ssd_fetch"


def outcome_label(tier: Tier) -> str:
    """The latency-histogram outcome label of a hit on ``tier``."""
    return f"{tier.name.lower()}_hit"


class MetricsHub:
    """Derives registry metrics from one buffer manager's event stream."""

    def __init__(self, registry: MetricsRegistry | None = None,
                 epoch_ns: float = DEFAULT_EPOCH_NS,
                 fault_source=None, track_tenants: bool = False) -> None:
        self.registry = registry or MetricsRegistry()
        self.epoch_ns = float(epoch_ns)
        #: Project tenant-labelled series alongside the global ones:
        #: ``tenant_ops_total{tenant,kind}`` counters and
        #: ``tenant_op_latency_ns{tenant,kind}`` histograms.  Attribution
        #: is exact by construction — the op's tenant is read from the
        #: bus register at its OP event, and its latency bracket closes
        #: into the histogram chosen there — so for any window the
        #: tenant-labelled sums reconcile ±0 with the global totals.
        self.track_tenants = bool(track_tenants)
        #: Optional fault-injection source (an object exposing a
        #: ``registry`` of ``faults_injected_total`` /
        #: ``device_retries_total`` / ``torn_writes_detected_total``
        #: counters — typically a
        #: :class:`~repro.faults.injector.InjectionHandle`).  Its
        #: snapshot merges into this hub's registry at finalize, so the
        #: Prometheus/JSONL exporters see fault counters with no extra
        #: plumbing.  When not given, :meth:`attach` picks up the handle
        #: :func:`~repro.faults.injector.inject_faults` stashed on the
        #: buffer manager's hierarchy.
        self.fault_source = fault_source
        #: Optional decision source (an object exposing a ``registry``
        #: of ``migration_decisions_total`` / ``eviction_victims_total``
        #: counters and the ``admission_queue_depth`` histogram —
        #: typically a :class:`~repro.obs.decisions.DecisionRecorder`
        #: attached over the same window).  Like ``fault_source``, its
        #: snapshot merges into this hub's registry exactly once at
        #: finalize, so exported metrics carry per-policy decision
        #: histograms with no extra plumbing.
        self.decision_source = None
        #: One record per epoch tick: sim time plus per-tier occupancy
        #: and dirty ratios — the time series behind "how did the DRAM
        #: dirty ratio evolve before the checkpoint?".
        self.epochs: list[dict] = []
        self._bm = None
        self._bus = None
        self._cost = None
        self._clock = None
        self._chain = None
        self._next_epoch = float("inf")
        # Per-op bracketing state.
        self._op_start: float | None = None
        self._cur_hist: Histogram | None = None
        #: Tenant histogram of the op currently in flight (parallel to
        #: ``_cur_hist``, but chosen at the OP event, not the outcome).
        self._tenant_cur_hist: Histogram | None = None
        self._tenant_hists: dict[tuple[int, str], Histogram] = {}
        self._tenant_counters: dict[tuple[int, str], Counter] = {}
        self._finalized = False
        # Resolved-per-attach metric handles (no registry lookups on the
        # hot path).
        self._reads: Counter | None = None
        self._writes: Counter | None = None
        self._miss_counter: Counter | None = None
        self._miss_hist: Histogram | None = None
        self._hit_counters: dict[Tier, Counter] = {}
        self._hit_hists: dict[Tier, Histogram] = {}
        self._evict_counters: dict[Tier, Counter] = {}
        self._install_counters: dict[Tier, Counter] = {}
        self._writeback_counters: dict[Tier, Counter] = {}
        self._migrate_counters: dict[tuple, Counter] = {}
        self._clean_drops: Counter | None = None
        self._flushes: Counter | None = None
        self._occupancy_gauges: dict[Tier, object] = {}
        self._dirty_gauges: dict[Tier, object] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, bm) -> "MetricsHub":
        """Subscribe to ``bm``'s bus and resolve per-tier metric handles."""
        if self._bus is not None:
            raise RuntimeError("hub is already attached")
        registry = self.registry
        self._bm = bm
        self._cost = bm.hierarchy.cost
        self._clock = bm.hierarchy.clock
        self._chain = bm.chain
        self._reads = registry.counter("buffer_ops_total", {"kind": "read"})
        self._writes = registry.counter("buffer_ops_total", {"kind": "write"})
        self._miss_counter = registry.counter("buffer_misses_total")
        self._miss_hist = registry.histogram(
            "op_latency_ns", {"outcome": MISS_OUTCOME}
        )
        self._clean_drops = registry.counter("clean_drops_total")
        self._flushes = registry.counter("dirty_page_flushes_total")
        for node in bm.chain:
            tier = node.tier
            name = tier.name
            self._hit_counters[tier] = registry.counter(
                "tier_hits_total", {"tier": name}
            )
            self._hit_hists[tier] = registry.histogram(
                "op_latency_ns", {"outcome": outcome_label(tier)}
            )
            self._evict_counters[tier] = registry.counter(
                "tier_evictions_total", {"tier": name}
            )
            self._install_counters[tier] = registry.counter(
                "tier_installs_total", {"tier": name}
            )
            self._writeback_counters[tier] = registry.counter(
                "tier_write_backs_total", {"src": name}
            )
            self._occupancy_gauges[tier] = registry.gauge(
                "tier_occupancy_ratio", {"tier": name}
            )
            self._dirty_gauges[tier] = registry.gauge(
                "tier_dirty_ratio", {"tier": name}
            )
        self._op_start = None
        self._cur_hist = None
        self._tenant_cur_hist = None
        self._finalized = False
        if self.fault_source is None:
            self.fault_source = getattr(bm.hierarchy, "fault_handle", None)
        self._next_epoch = self._cost.total_ns + self.epoch_ns
        self._bus = bm.events
        self._bus.subscribe(self)
        return self

    def detach(self) -> None:
        """Finalize pending state and restore the pre-attach bus."""
        if self._bus is None:
            return
        self.finalize()
        self._bus.unsubscribe(self)
        self._bus = None

    def finalize(self) -> None:
        """Flush the in-flight op and take a closing gauge sample."""
        if self._finalized or self._cost is None:
            return
        self._finalized = True
        now = self._cost.total_ns
        start = self._op_start
        if start is not None:
            hist = self._cur_hist or self._miss_hist
            hist.observe(now - start)
            if self._tenant_cur_hist is not None:
                self._tenant_cur_hist.observe(now - start)
            self._op_start = None
            self._cur_hist = None
            self._tenant_cur_hist = None
        if self._chain is not None:
            self._sample_epoch(now)
        if self.track_tenants and self._bm is not None:
            # Cumulative-since-construction admission stats, published
            # once per window (same one-shot guard as the fault merge).
            tenancy = getattr(self._bm, "tenancy", None)
            if tenancy is not None and tenancy.admission_queues:
                for tenant, (cons, adm, _rate) in enumerate(
                    tenancy.admission_stats()
                ):
                    labels = {"tenant": str(tenant)}
                    self.registry.counter(
                        "tenant_admission_considerations_total", labels
                    ).inc(cons)
                    self.registry.counter(
                        "tenant_admissions_total", labels
                    ).inc(adm)
        source = self.fault_source
        if source is not None:
            # One-shot by construction: finalize runs once per window
            # (guarded by ``_finalized``), so fault counters merge
            # exactly once into this hub's registry.
            self.registry.merge_snapshot(source.registry.snapshot())
        decisions = self.decision_source
        if decisions is not None:
            # Same one-shot guard as the fault merge above.
            self.registry.merge_snapshot(decisions.registry.snapshot())

    # ------------------------------------------------------------------
    # Bus protocol
    # ------------------------------------------------------------------
    def __call__(self, event) -> None:
        self.apply_event(event.type, event.page_id, event.tier, event.src,
                         event.dirty)

    def apply_op_batch(self, summary) -> None:
        """Batched projection of a run of top-tier read hits.

        Reconstructs, exactly, the per-op latency brackets a sequential
        run would have measured: the accumulator total at the ``i``-th
        op's OP_READ event is ``(base_fp + cumsum(latency_fp)[:i]) /
        FP_SCALE``, and the bracket diffs are float subtractions of
        those same values.  Epoch boundaries are found on the
        reconstructed timeline and sampled at the same op positions a
        per-op run would have sampled them (buffer state is unchanged by
        fast-path reads, so the gauge values match too).
        """
        count = summary.count
        base_fp = summary.base_fp
        cum = np.cumsum(summary.latency_fp, dtype=np.int64)
        # starts[i] == cost.total_ns as read at the i-th OP_READ event.
        starts = np.empty(count, dtype=np.float64)
        starts[0] = base_fp / FP_SCALE
        if count > 1:
            starts[1:] = (base_fp + cum[:-1]).astype(np.float64) / FP_SCALE
        start = self._op_start
        if start is not None:
            # The op in flight before this run closes at the run's first
            # OP_READ, exactly as apply_event would have closed it.
            (self._cur_hist or self._miss_hist).observe(float(starts[0]) - start)
        hit_hist = self._hit_hists.get(summary.tier, self._miss_hist)
        if count > 1:
            hit_hist.observe_batch(starts[1:] - starts[:-1])
        if self.track_tenants:
            if start is not None and self._tenant_cur_hist is not None:
                self._tenant_cur_hist.observe(float(starts[0]) - start)
            tenant_hist, tenant_counter = self._tenant_handles(
                summary.tenant_id, "read"
            )
            if count > 1:
                tenant_hist.observe_batch(starts[1:] - starts[:-1])
            self._tenant_cur_hist = tenant_hist
            tenant_counter.inc(count)
        self._op_start = float(starts[-1])
        self._cur_hist = hit_hist
        self._finalized = False
        self._reads.inc(count)
        counter = self._hit_counters.get(summary.tier)
        if counter is not None:
            counter.inc(count)
        if float(starts[-1]) >= self._next_epoch:
            idx = int(np.searchsorted(starts, self._next_epoch, side="left"))
            while idx < count:
                self._sample_epoch(float(starts[idx]))
                nxt = int(np.searchsorted(starts, self._next_epoch, side="left"))
                idx = nxt if nxt > idx else idx + 1

    def apply_event(self, etype, page_id, tier, src, dirty) -> None:
        """Fast-path projection; fields arrive positionally from the bus."""
        if etype is EventType.OP_READ or etype is EventType.OP_WRITE:
            now = self._cost.total_ns
            start = self._op_start
            if start is not None:
                # The previous op's charges (including its WAL/checkpoint
                # tail) are committed by the time the next op begins.
                (self._cur_hist or self._miss_hist).observe(now - start)
            self._op_start = now
            self._cur_hist = None
            self._finalized = False
            if etype is EventType.OP_READ:
                self._reads.inc()
                kind = "read"
            else:
                self._writes.inc()
                kind = "write"
            if self.track_tenants:
                if start is not None and self._tenant_cur_hist is not None:
                    self._tenant_cur_hist.observe(now - start)
                hist, counter = self._tenant_handles(self._bus.tenant_id, kind)
                self._tenant_cur_hist = hist
                counter.inc()
            if now >= self._next_epoch:
                self._sample_epoch(now)
        elif etype is EventType.HIT:
            self._cur_hist = self._hit_hists.get(tier, self._miss_hist)
            counter = self._hit_counters.get(tier)
            if counter is not None:
                counter.inc()
        elif etype is EventType.MISS:
            self._cur_hist = self._miss_hist
            self._miss_counter.inc()
        elif etype is EventType.INSTALL:
            counter = self._install_counters.get(tier)
            if counter is not None:
                counter.inc()
        elif etype is EventType.MIGRATE_UP or etype is EventType.MIGRATE_DOWN:
            key = (etype, src, tier)
            counter = self._migrate_counters.get(key)
            if counter is None:
                direction = "up" if etype is EventType.MIGRATE_UP else "down"
                edge = f"{src.name if src else '?'}->{tier.name if tier else '?'}"
                counter = self.registry.counter(
                    "migrations_total", {"direction": direction, "edge": edge}
                )
                self._migrate_counters[key] = counter
            counter.inc()
        elif etype is EventType.EVICT:
            counter = self._evict_counters.get(tier)
            if counter is not None:
                counter.inc()
        elif etype is EventType.WRITE_BACK:
            counter = self._writeback_counters.get(src)
            if counter is not None:
                counter.inc()
        elif etype is EventType.CLEAN_DROP:
            self._clean_drops.inc()
        elif etype is EventType.FLUSH:
            self._flushes.inc()

    # ------------------------------------------------------------------
    # Tenant-labelled series
    # ------------------------------------------------------------------
    def _tenant_handles(self, tenant_id: int, kind: str):
        """Resolve (lazily) the histogram+counter pair of one tenant/kind.

        Lazy like the migration counters: only tenants that actually run
        ops appear in the registry, keeping single-tenant exports free
        of phantom series.
        """
        key = (tenant_id, kind)
        hist = self._tenant_hists.get(key)
        if hist is None:
            labels = {"tenant": str(tenant_id), "kind": kind}
            hist = self.registry.histogram("tenant_op_latency_ns", labels)
            self._tenant_hists[key] = hist
            self._tenant_counters[key] = self.registry.counter(
                "tenant_ops_total", labels
            )
        return hist, self._tenant_counters[key]

    def tenant_latency_count(self) -> int:
        """Total observations across tenant-labelled histograms.

        Reconciles ±0 with :meth:`op_latency_count` after
        :meth:`finalize` when tenant tracking is on: every global
        bracket flush is mirrored by exactly one tenant flush.
        """
        total = 0
        for series in self.registry.series():
            if isinstance(series, Histogram) \
                    and series.name == "tenant_op_latency_ns":
                total += series.count
        return total

    # ------------------------------------------------------------------
    # Epoch gauges
    # ------------------------------------------------------------------
    def _sample_epoch(self, now: float) -> None:
        """Sample occupancy/dirty gauges and advance the sim clock."""
        tiers: dict[str, dict[str, float]] = {}
        for node in self._chain:
            pool = node.pool
            capacity = pool.capacity_bytes or 1
            occupancy = pool.used_bytes / capacity
            descriptors = pool.descriptors()
            dirty = sum(1 for d in descriptors if d.dirty)
            dirty_ratio = dirty / len(descriptors) if descriptors else 0.0
            self._occupancy_gauges[node.tier].set(occupancy)
            self._dirty_gauges[node.tier].set(dirty_ratio)
            tiers[node.tier.name] = {
                "occupancy": occupancy,
                "dirty_ratio": dirty_ratio,
            }
        self.epochs.append({"sim_ns": now, "tiers": tiers})
        if self._clock is not None:
            self._clock.advance_to(now)
        # Next boundary strictly ahead of now, even after a long stall.
        epoch = self.epoch_ns
        self._next_epoch = now + epoch - (now % epoch if epoch else 0.0)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able result payload: registry state plus the epoch series."""
        return {
            "registry": self.registry.snapshot(),
            "epochs": list(self.epochs),
        }

    def op_latency_count(self) -> int:
        """Total latency observations across all outcome histograms.

        Reconciles ±0 with ``BufferStats.reads + writes`` for the same
        window once :meth:`finalize` has run — every op event flushes
        exactly one observation.
        """
        total = 0
        for series in self.registry.series():
            if isinstance(series, Histogram) and series.name == "op_latency_ns":
                total += series.count
        return total
