"""Thread-safe metrics primitives and the registry that names them.

Three primitive kinds, mirroring the Prometheus data model:

* :class:`Counter` — a monotonically increasing total,
* :class:`Gauge` — a last-written value (tier occupancy, dirty ratio),
* :class:`Histogram` — log2-scaled buckets over simulated nanoseconds,
  sized so one op latency lands in a bucket with a single
  ``int.bit_length`` call (no float log, no allocation).

All updates take the instance's lock, so concurrent ``threading``
workers lose no samples; reads return consistent snapshots.  Instances
are interned by ``(name, labels)`` in a :class:`MetricsRegistry`, whose
:meth:`~MetricsRegistry.snapshot` /
:meth:`~MetricsRegistry.merge_snapshot` pair is the unit the executor
ships between processes — snapshots are plain JSON-able dicts.
"""

from __future__ import annotations

import threading

from ..np_compat import np

#: Histogram buckets are powers of two from 2**_MIN_EXP ns up to
#: 2**_MAX_EXP ns, plus a +Inf overflow bucket.  16 ns .. ~17.6 sim
#: seconds covers everything from one cache-line charge to a full
#: checkpoint stall.
_MIN_EXP = 4
_MAX_EXP = 34
NUM_BUCKETS = _MAX_EXP - _MIN_EXP + 2  # one per exponent + overflow

#: Upper bounds (``le`` labels) of the log2 buckets, in sim ns.
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    float(2 ** exp) for exp in range(_MIN_EXP, _MAX_EXP + 1)
) + (float("inf"),)


def bucket_index(value: float) -> int:
    """The log2 bucket a (non-negative) sim-ns value falls into."""
    if value < 0:
        value = 0.0
    index = int(value).bit_length() - _MIN_EXP
    if index < 0:
        return 0
    if index > NUM_BUCKETS - 1:
        return NUM_BUCKETS - 1
    return index


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "_value", "_lock")

    kind = "counter"

    def __init__(self, name: str, labels: dict[str, str] | None = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def _state(self):
        return self._value

    def _merge_state(self, state) -> None:
        with self._lock:
            self._value += state


class Gauge:
    """A last-written observation (occupancy ratio, dirty ratio, ...)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, str] | None = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def _state(self):
        return self._value

    def _merge_state(self, state) -> None:
        # Merging per-worker snapshots keeps the last merged sample;
        # merge order is the executor's (deterministic) submission order.
        with self._lock:
            self._value = float(state)


class Histogram:
    """Log2-scaled sim-nanosecond buckets plus running sum and count."""

    __slots__ = ("name", "labels", "_counts", "_sum", "_lock")

    kind = "histogram"

    def __init__(self, name: str, labels: dict[str, str] | None = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self._counts = [0] * NUM_BUCKETS
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bucket_index(value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    def observe_batch(self, values) -> None:
        """Observe an array of values with one locked bulk update.

        Bucket indexes are computed vectorised: ``frexp`` exponents of
        the truncated values equal ``int(value).bit_length()`` for every
        value below 2**53, so the binning matches :meth:`observe`
        element for element.  The running sum is added as one reduction;
        all observed sim-ns values are multiples of 2**-20 below 2**33,
        for which float addition is exact in any order.
        """
        if np is None or not isinstance(values, np.ndarray):
            for value in values:
                self.observe(value)
            return
        if values.size == 0:
            return
        ints = np.maximum(values, 0.0).astype(np.int64)
        exponents = np.frexp(ints.astype(np.float64))[1]
        indexes = np.clip(exponents - _MIN_EXP, 0, NUM_BUCKETS - 1)
        binned = np.bincount(indexes, minlength=NUM_BUCKETS)
        total = float(values.sum())
        with self._lock:
            counts = self._counts
            for index, count in enumerate(binned):
                if count:
                    counts[index] += int(count)
            self._sum += total

    @property
    def count(self) -> int:
        with self._lock:
            return sum(self._counts)

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> list[int]:
        with self._lock:
            return list(self._counts)

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile sample.

        Log-bucketed, so the answer is exact to within one power of two —
        enough to read a p99 off a run without storing raw samples.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            total = sum(self._counts)
            if total == 0:
                return 0.0
            rank = q * total
            running = 0
            for index, count in enumerate(self._counts):
                running += count
                if running >= rank:
                    return BUCKET_BOUNDS[index]
        return BUCKET_BOUNDS[-1]

    def _state(self):
        with self._lock:
            return {"counts": list(self._counts), "sum": self._sum}

    def _merge_state(self, state) -> None:
        counts = state["counts"]
        with self._lock:
            for index, count in enumerate(counts):
                self._counts[index] += count
            self._sum += state["sum"]


def _key(name: str, labels: dict[str, str] | None) -> str:
    """The canonical series key: ``name{k="v",...}`` with sorted labels."""
    if not labels:
        return name
    rendered = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{rendered}}}"


class MetricsRegistry:
    """Interns metric instances by ``(name, labels)`` and snapshots them.

    The registry is the shippable unit of observability: the harness
    builds one per run, the executor pickles its :meth:`snapshot` back
    from worker processes, and the exporters render it.  Creation is
    locked; the returned primitives carry their own locks, so hot-path
    updates never touch the registry again.
    """

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self) -> None:
        self._series: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, labels: dict[str, str] | None):
        key = _key(name, labels)
        with self._lock:
            found = self._series.get(key)
            if found is None:
                found = cls(name, labels)
                self._series[key] = found
            elif not isinstance(found, cls):
                raise TypeError(
                    f"series {key!r} already registered as {found.kind}"
                )
            return found

    def counter(self, name: str, labels: dict[str, str] | None = None) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, labels: dict[str, str] | None = None) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, labels: dict[str, str] | None = None) -> Histogram:
        return self._get_or_create(Histogram, name, labels)

    # ------------------------------------------------------------------
    def series(self) -> list[Counter | Gauge | Histogram]:
        """All registered series, sorted by canonical key."""
        with self._lock:
            return [self._series[key] for key in sorted(self._series)]

    def get(self, name: str, labels: dict[str, str] | None = None):
        with self._lock:
            return self._series.get(_key(name, labels))

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-able point-in-time copy of every series."""
        with self._lock:
            items = sorted(self._series.items())
        return {
            key: {
                "kind": series.kind,
                "name": series.name,
                "labels": dict(series.labels),
                "state": series._state(),
            }
            for key, series in items
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histogram buckets add; gauges keep the last merged
        value.  Merging the same snapshots in the same order always
        produces the same registry, which is what makes per-worker
        metrics deterministic across ``--jobs`` values.
        """
        for key in sorted(snapshot):
            entry = snapshot[key]
            cls = self._KINDS[entry["kind"]]
            series = self._get_or_create(cls, entry["name"], entry["labels"])
            series._merge_state(entry["state"])
