"""Live Prometheus scrape endpoint over the stdlib HTTP server.

The exporter already speaks the Prometheus text exposition format
(:func:`~repro.obs.export.prometheus_text`); this module serves it over
HTTP so a run can be scraped *while it executes*.  The server owns no
metric state — it calls a ``provider`` callable on every request, so
the caller decides what "current" means (typically: render the merged
registry of every cell that has completed so far).  The contract the
CLI's ``serve-metrics`` mode and CI smoke pin down: the **final** scrape
after the run completes is byte-for-byte equal to the file export,
because both render the same merged registry through the same function.

Stdlib only (``http.server``), binds 127.0.0.1 by default, port 0 picks
a free port.  Request handling runs on daemon threads and never touches
the measured system — the provider reads completed snapshots, so a
scrape cannot perturb an in-flight cell.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

#: The Prometheus text exposition content type.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Serves ``provider()`` at ``/metrics`` (and ``/``) until stopped.

    Also exposes the two conventional probe endpoints: ``/healthz``
    answers 200 whenever the server is up (liveness), ``/readyz``
    answers 503 until the first successful provider render — or an
    explicit :meth:`mark_ready` — and 200 afterwards (readiness).  The
    serving plane reuses this as its health surface.
    """

    def __init__(self, provider, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.provider = provider
        self.host = host
        self.port = port
        self.requests_served = 0
        self.ready = False
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def mark_ready(self) -> None:
        """Flip ``/readyz`` to 200 without waiting for a scrape."""
        self.ready = True

    # ------------------------------------------------------------------
    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            raise RuntimeError("server is already running")
        server = self

        class Handler(BaseHTTPRequestHandler):
            def _send_text(self, status: int, text: str) -> None:
                body = text.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type",
                                 "text/plain; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):  # noqa: N802 (stdlib handler casing)
                if self.path == "/healthz":
                    self._send_text(200, "ok\n")
                    return
                if self.path == "/readyz":
                    if server.ready:
                        self._send_text(200, "ready\n")
                    else:
                        self._send_text(503, "not ready\n")
                    return
                if self.path not in ("/metrics", "/"):
                    self.send_error(
                        404, "only /metrics, /healthz, /readyz are served")
                    return
                try:
                    body = server.provider().encode("utf-8")
                except Exception as exc:  # provider bug, not transport
                    self.send_error(500, f"provider failed: {exc}")
                    return
                server.ready = True
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                server.requests_served += 1

            def log_message(self, *args) -> None:
                """Silence per-request stderr logging."""

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="metrics-server",
            daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        httpd = self._httpd
        if httpd is None:
            return
        self._httpd = None
        httpd.shutdown()
        httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def scrape(self, timeout: float = 5.0) -> str:
        """One real HTTP GET against the live endpoint."""
        import urllib.request

        with urllib.request.urlopen(self.url, timeout=timeout) as response:
            return response.read().decode("utf-8")

    def probe(self, path: str, timeout: float = 5.0) -> tuple[int, str]:
        """GET an arbitrary path; returns ``(status, body)`` even on
        error statuses (``/readyz`` legitimately answers 503)."""
        import urllib.error
        import urllib.request

        url = f"http://{self.host}:{self.port}{path}"
        try:
            with urllib.request.urlopen(url, timeout=timeout) as response:
                return response.status, response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read().decode("utf-8", "replace")

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
