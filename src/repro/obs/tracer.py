"""Sampling page-lifecycle tracer: one page's journey through the tiers.

The tracer subscribes to the event bus and records lifecycle spans —
install, migrate up/down, evict, write-back, clean drop, flush — for a
deterministic sample of pages, each span stamped with the simulated time
read from the shared :class:`~repro.hardware.simclock.CostAccumulator`.
Sampling is a multiplicative hash of the page id (no RNG state), so the
same pages are traced on every run and across worker processes: traces
from a parallel executor merge into exactly the serial trace.

Query :meth:`~PageLifecycleTracer.journey` for one page's span list, or
:meth:`~PageLifecycleTracer.render` for a human-readable timeline::

    page 17: install@NVM +0ns -> migrate_up NVM->DRAM +12.4us -> ...

Like every observability subscriber, the tracer implements the bus's
``apply_event`` protocol, so attaching it keeps the bus allocation-free;
non-lifecycle events (hits, direct serves) fall through after one
set-membership test.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from ..core.events import EventType

#: Knuth's 32-bit multiplicative hash constant.
_HASH_MULT = 2654435761
_HASH_MASK = 0xFFFFFFFF

#: Event types that mark a page-lifecycle transition.
LIFECYCLE_EVENTS = frozenset({
    EventType.INSTALL,
    EventType.MIGRATE_UP,
    EventType.MIGRATE_DOWN,
    EventType.EVICT,
    EventType.WRITE_BACK,
    EventType.CLEAN_DROP,
    EventType.FLUSH,
    EventType.MINI_PAGE_PROMOTION,
})


@dataclass(frozen=True)
class TraceSpan:
    """One lifecycle transition of one traced page."""

    sim_ns: float
    event: str
    tier: str | None
    src: str | None
    dirty: bool

    def as_dict(self) -> dict:
        return {
            "sim_ns": self.sim_ns,
            "event": self.event,
            "tier": self.tier,
            "src": self.src,
            "dirty": self.dirty,
        }

    def describe(self) -> str:
        if self.src and self.tier and self.src != self.tier:
            where = f"{self.src}->{self.tier}"
        else:
            where = f"@{self.tier}" if self.tier else ""
        flag = " dirty" if self.dirty else ""
        return f"{self.event}{where}{flag} +{self.sim_ns:.0f}ns"


class PageLifecycleTracer:
    """Records lifecycle spans for a sampled fraction of pages."""

    def __init__(self, fraction: float = 0.01,
                 max_spans_per_page: int = 256) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        self.fraction = fraction
        self.max_spans_per_page = max_spans_per_page
        #: Hash threshold: page ids whose 32-bit hash falls below it are
        #: traced.  fraction=1 traces everything, fraction=0 nothing.
        self._threshold = int(fraction * (_HASH_MASK + 1))
        #: Ring buffers: each page keeps its *last* ``max_spans_per_page``
        #: spans, so a long run's memory is bounded while the trace still
        #: shows where a page ended up.  Overwritten spans are counted in
        #: :attr:`spans_dropped` rather than silently lost.
        self._spans: dict[int, deque[TraceSpan]] = {}
        self._dropped = 0
        self._lock = threading.Lock()
        self._bus = None
        self._cost = None

    # ------------------------------------------------------------------
    def sampled(self, page_id: int) -> bool:
        """Whether ``page_id`` is in the traced sample (deterministic)."""
        return ((page_id * _HASH_MULT) & _HASH_MASK) < self._threshold

    def attach(self, bm) -> "PageLifecycleTracer":
        """Subscribe to ``bm``'s event bus and read its sim timeline."""
        self._cost = bm.hierarchy.cost
        self._bus = bm.events
        self._bus.subscribe(self)
        return self

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self)
            self._bus = None

    # ------------------------------------------------------------------
    def __call__(self, event) -> None:
        self.apply_event(event.type, event.page_id, event.tier, event.src,
                         event.dirty)

    def apply_op_batch(self, summary) -> None:
        """Bus batch path: no-op — hits are not lifecycle events."""

    def apply_event(self, etype, page_id, tier, src, dirty) -> None:
        """Bus fast path: one set test, then the sampling hash."""
        if etype not in LIFECYCLE_EVENTS:
            return
        if ((page_id * _HASH_MULT) & _HASH_MASK) >= self._threshold:
            return
        span = TraceSpan(
            sim_ns=self._cost.total_ns if self._cost is not None else 0.0,
            event=etype.value,
            tier=tier.name if tier is not None else None,
            src=src.name if src is not None else None,
            dirty=dirty,
        )
        with self._lock:
            spans = self._spans.get(page_id)
            if spans is None:
                spans = self._spans[page_id] = deque(
                    maxlen=self.max_spans_per_page)
            if len(spans) == self.max_spans_per_page:
                self._dropped += 1
            spans.append(span)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def traced_pages(self) -> list[int]:
        with self._lock:
            return sorted(self._spans)

    def journey(self, page_id: int) -> list[TraceSpan]:
        """All recorded spans of one page, in event order."""
        with self._lock:
            return list(self._spans.get(page_id, ()))

    def render(self, page_id: int) -> str:
        """One page's journey as a one-line timeline."""
        spans = self.journey(page_id)
        if not spans:
            return f"page {page_id}: (no spans recorded)"
        return f"page {page_id}: " + " -> ".join(s.describe() for s in spans)

    def snapshot(self) -> dict:
        """JSON-able trace payload: per-page spans plus drop accounting.

        ``pages`` maps page ids (as strings) to span-dict lists — each
        list is the page's *most recent* ``max_spans_per_page`` spans;
        ``spans_dropped`` counts spans the ring buffers overwrote.
        """
        with self._lock:
            return {
                "pages": {
                    str(page_id): [span.as_dict() for span in spans]
                    for page_id, spans in sorted(self._spans.items())
                },
                "spans_dropped": self._dropped,
            }

    @property
    def spans_dropped(self) -> int:
        """Spans overwritten by per-page ring buffers so far."""
        with self._lock:
            return self._dropped

    @property
    def num_spans(self) -> int:
        with self._lock:
            return sum(len(spans) for spans in self._spans.values())
