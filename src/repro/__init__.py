"""repro — a Python reproduction of Spitfire (SIGMOD '21).

Spitfire is a multi-threaded, three-tier buffer manager for
DRAM + NVM + SSD storage hierarchies.  This package reproduces the full
system as a discrete cost-model simulation plus a functionally complete
buffer manager, storage engine, and benchmark suite.

Quick start::

    from repro import (
        BufferManager, HierarchyShape, SPITFIRE_LAZY, StorageHierarchy,
    )

    hierarchy = StorageHierarchy(HierarchyShape(dram_gb=2, nvm_gb=8, ssd_gb=50))
    bm = BufferManager(hierarchy, SPITFIRE_LAZY)
    page = bm.allocate_page()
    bm.write(page, offset=0, nbytes=100)
    bm.read(page, offset=0, nbytes=1024)
"""

from .core import (
    AccessResult,
    BufferEvent,
    BufferManager,
    BufferManagerConfig,
    BufferStats,
    DRAM_SSD_POLICY,
    EventBus,
    EventType,
    HYMEM_POLICY,
    MigrationEngine,
    MigrationPolicy,
    NVM_SSD_POLICY,
    POLICY_PRESETS,
    SPITFIRE_EAGER,
    SPITFIRE_LAZY,
    NvmAdmission,
    TierChain,
    TierNode,
    inclusivity_ratio,
    make_hymem,
)
from .engine import EngineConfig, StorageEngine
from .hardware import (
    DEFAULT_SCALE,
    HierarchyShape,
    SimulationScale,
    StorageHierarchy,
    Tier,
    hierarchy_cost,
    performance_per_price,
)
from .tuning import AdaptiveController, AnnealingSchedule, PolicyAnnealer
from .workloads import TpccWorkload, YCSB_BA, YCSB_RO, YCSB_WH, YcsbWorkload

__version__ = "1.0.0"

__all__ = [
    "AccessResult",
    "AdaptiveController",
    "AnnealingSchedule",
    "BufferEvent",
    "BufferManager",
    "BufferManagerConfig",
    "BufferStats",
    "DEFAULT_SCALE",
    "DRAM_SSD_POLICY",
    "EngineConfig",
    "EventBus",
    "EventType",
    "HierarchyShape",
    "HYMEM_POLICY",
    "MigrationEngine",
    "MigrationPolicy",
    "NVM_SSD_POLICY",
    "NvmAdmission",
    "POLICY_PRESETS",
    "PolicyAnnealer",
    "SimulationScale",
    "SPITFIRE_EAGER",
    "SPITFIRE_LAZY",
    "StorageEngine",
    "StorageHierarchy",
    "Tier",
    "TierChain",
    "TierNode",
    "TpccWorkload",
    "YCSB_BA",
    "YCSB_RO",
    "YCSB_WH",
    "YcsbWorkload",
    "hierarchy_cost",
    "inclusivity_ratio",
    "make_hymem",
    "performance_per_price",
    "__version__",
]
