"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    repro-experiments --list
    repro-experiments fig6 fig7          # run two experiments
    repro-experiments --all --full       # everything, full effort
    repro-experiments --all --jobs 8     # fan cells out over 8 processes
    repro-experiments fig14 --out results/
    repro-experiments fig6 --metrics-out metrics.prom

Each experiment prints a paper-style text table and (with ``--out``)
writes a JSON result file for archival/plotting.  ``--metrics-out``
attaches a :class:`~repro.obs.hub.MetricsHub` to every executor cell
and writes the merged metrics as Prometheus text exposition (plus a
``.jsonl`` snapshot stream next to it); the figure JSON itself is
byte-identical with or without metrics attached.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time
from pathlib import Path

from .bench.experiments import REGISTRY


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the Spitfire (SIGMOD '21) evaluation.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (e.g. fig6 table2)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment in paper order")
    parser.add_argument("--list", action="store_true",
                        help="list available experiment ids")
    parser.add_argument("--full", action="store_true",
                        help="full effort (longer runs, more points)")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes per experiment (default: 1; "
                             "results are identical at any job count)")
    parser.add_argument("--out", metavar="DIR",
                        help="directory for JSON result files")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="collect per-cell metrics and write Prometheus "
                             "text exposition to PATH (and a JSONL snapshot "
                             "stream to PATH with a .jsonl suffix)")
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in REGISTRY:
            print(experiment_id)
        return 0

    chosen = list(REGISTRY) if args.all else args.experiments
    if not chosen:
        parser.error("no experiments selected (use ids, --all, or --list)")
    unknown = [e for e in chosen if e not in REGISTRY]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"choose from {', '.join(REGISTRY)}"
        )

    sink = None
    scope = contextlib.nullcontext()
    if args.metrics_out:
        from .bench import executor

        scope = executor.metrics_collection()
    with scope as sink:
        for experiment_id in chosen:
            started = time.time()
            result = REGISTRY[experiment_id](quick=not args.full, jobs=args.jobs)
            print(result.render())
            print(f"   [{experiment_id} took {time.time() - started:.1f}s]\n")
            if args.out:
                path = result.save_json(args.out)
                print(f"   saved {path}")
    if args.metrics_out:
        _export_metrics(args.metrics_out, sink)
    return 0


def _export_metrics(out_path: str, sink) -> None:
    """Merge per-cell metrics and write Prometheus + JSONL files."""
    from .core.stats import BufferStats
    from .obs.export import (
        merge_snapshots,
        snapshot_jsonl_lines,
        write_jsonl,
        write_prometheus,
    )
    from .obs.metrics import Histogram

    merged = merge_snapshots(result.metrics for _, result in sink)
    path = write_prometheus(out_path, merged)
    lines: list[str] = []
    totals = BufferStats()
    for label, result in sink:
        lines.extend(snapshot_jsonl_lines(result.metrics, label))
        totals.merge(result.stats)
    jsonl_path = write_jsonl(Path(out_path).with_suffix(".jsonl"), lines)
    latency_count = sum(
        series.count for series in merged.series()
        if isinstance(series, Histogram) and series.name == "op_latency_ns"
    )
    print(f"   metrics: {len(sink)} cell(s), "
          f"op_latency_ns count={latency_count}, "
          f"stats reads+writes={totals.reads + totals.writes}")
    print(f"   wrote {path} and {jsonl_path}")


if __name__ == "__main__":
    sys.exit(main())
