"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    repro-experiments --list
    repro-experiments fig6 fig7          # run two experiments
    repro-experiments --all --full       # everything, full effort
    repro-experiments --all --jobs 8     # fan cells out over 8 processes
    repro-experiments fig14 --out results/
    repro-experiments fig6 --metrics-out metrics.prom
    repro-experiments chaos --seeds 1 7 --jobs 4 --out chaos.json

Each experiment prints a paper-style text table and (with ``--out``)
writes a JSON result file for archival/plotting.  ``--metrics-out``
attaches a :class:`~repro.obs.hub.MetricsHub` to every executor cell
and writes the merged metrics as Prometheus text exposition (plus a
``.jsonl`` snapshot stream next to it); the figure JSON itself is
byte-identical with or without metrics attached.

With ``--jobs N`` and more than one experiment selected, the whole run
becomes a **suite session**: one persistent worker pool is created and
warmed up front, and every experiment's cells flow through it —
several experiment drivers run concurrently, so the pool queue holds
cells from multiple figures at once and one figure's straggler tail
overlaps the next figure's start.  Output (tables, JSON files, metrics
exports) is printed and written in paper order and stays byte-identical
to a sequential ``--jobs 1`` run.

The ``chaos`` subcommand runs the crash-consistency matrix instead of
an experiment: every consistency-relevant boundary of a deterministic
reference workload gets a crash-and-recover replay, with WAL-tail and
torn-page hazards layered on top (see ``docs/FAULTS.md``).  The JSON
report is byte-identical for any ``--jobs`` value.
"""

from __future__ import annotations

import argparse
import contextvars
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from .bench.experiments import REGISTRY


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "chaos":
        return chaos_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the Spitfire (SIGMOD '21) evaluation.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (e.g. fig6 table2)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment in paper order")
    parser.add_argument("--list", action="store_true",
                        help="list available experiment ids")
    parser.add_argument("--full", action="store_true",
                        help="full effort (longer runs, more points)")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes per experiment (default: 1; "
                             "results are identical at any job count)")
    parser.add_argument("--out", metavar="DIR",
                        help="directory for JSON result files")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="collect per-cell metrics and write Prometheus "
                             "text exposition to PATH (and a JSONL snapshot "
                             "stream to PATH with a .jsonl suffix)")
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in REGISTRY:
            print(experiment_id)
        return 0

    chosen = list(REGISTRY) if args.all else args.experiments
    if not chosen:
        parser.error("no experiments selected (use ids, --all, or --list)")
    unknown = [e for e in chosen if e not in REGISTRY]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"choose from {', '.join(REGISTRY)}"
        )

    sink = _run_experiments(chosen, args)
    if args.metrics_out:
        _export_metrics(args.metrics_out, sink)
    return 0


def _run_experiments(chosen: list[str], args) -> list:
    """Run the selected experiments; returns the merged metrics sink.

    One experiment (or ``--jobs 1``) runs inline.  Several experiments
    with ``--jobs N`` open a suite-wide run session: the persistent
    pool is warmed once, then a few driver threads walk the experiment
    list concurrently so the shared pool schedules cells from multiple
    figures as one batch.  Each driver collects metrics into its own
    per-experiment sink; concatenating the sinks in paper order makes
    the merged export byte-identical to a sequential run.
    """
    from .bench import executor

    collect = bool(args.metrics_out)
    quick = not args.full

    def drive(experiment_id: str):
        started = time.time()
        if collect:
            with executor.metrics_collection() as sink:
                result = REGISTRY[experiment_id](quick=quick, jobs=args.jobs)
        else:
            sink = []
            result = REGISTRY[experiment_id](quick=quick, jobs=args.jobs)
        return result, sink, time.time() - started

    def emit(experiment_id: str, result, elapsed: float) -> None:
        print(result.render())
        print(f"   [{experiment_id} took {elapsed:.1f}s]\n")
        if args.out:
            path = result.save_json(args.out)
            print(f"   saved {path}")

    merged: list = []
    if args.jobs > 1 and len(chosen) > 1:
        with executor.run_session(jobs=args.jobs) as session:
            # Each driver runs in a copy of this thread's context, so
            # per-driver metrics scopes stay isolated while inheriting
            # any ambient scopes entered before the session.
            drivers = min(len(chosen), max(2, args.jobs))
            with ThreadPoolExecutor(max_workers=drivers) as threads:
                futures = [
                    threads.submit(contextvars.copy_context().run, drive,
                                   experiment_id)
                    for experiment_id in chosen
                ]
                for experiment_id, future in zip(chosen, futures):
                    result, sink, elapsed = future.result()
                    emit(experiment_id, result, elapsed)
                    merged.extend(sink)
            print(f"   [{session.describe()}]")
    else:
        for experiment_id in chosen:
            result, sink, elapsed = drive(experiment_id)
            emit(experiment_id, result, elapsed)
            merged.extend(sink)
    return merged


def chaos_main(argv: list[str]) -> int:
    """``repro-experiments chaos``: the crash-consistency matrix."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments chaos",
        description="Replay a deterministic workload, crashing at every "
                    "consistency-relevant boundary, and assert the ACID "
                    "invariant catalogue after recovery.",
    )
    parser.add_argument("--seeds", type=int, nargs="+", default=[1, 7, 23],
                        metavar="N", help="workload seeds (default: 1 7 23)")
    parser.add_argument("--seed", type=int, default=None, metavar="N",
                        help="shorthand for a single-seed run")
    parser.add_argument("--policies", nargs="+",
                        default=["DRAM_SSD", "SPITFIRE_LAZY", "SPITFIRE_EAGER"],
                        metavar="P", help="migration policies to cover")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes (default: 1; the report is "
                             "byte-identical at any job count)")
    parser.add_argument("--no-tail-faults", action="store_true",
                        help="clean crashes only (skip torn-write, "
                             "dropped-persist, and torn-page hazards)")
    parser.add_argument("--read-error-rate", type=float, default=0.0,
                        metavar="R", help="live transient read-fault rate "
                                          "during the workload (default: 0)")
    parser.add_argument("--write-error-rate", type=float, default=0.0,
                        metavar="R", help="live transient write-fault rate "
                                          "during the workload (default: 0)")
    parser.add_argument("--out", metavar="PATH",
                        help="write the JSON report to PATH")
    args = parser.parse_args(argv)

    from .faults.crashpoints import (
        POLICIES,
        render_matrix_json,
        run_crash_matrix,
    )

    unknown = [p for p in args.policies if p not in POLICIES]
    if unknown:
        parser.error(
            f"unknown policy(ies): {', '.join(unknown)}; "
            f"choose from {', '.join(POLICIES)}"
        )
    seeds = [args.seed] if args.seed is not None else args.seeds

    from .bench import executor

    started = time.time()
    # The crash matrix shares the suite's persistent pool: a session
    # warms it once up front, then every CrashCase flows through it as
    # chunked tasks (the report stays byte-identical at any --jobs).
    with executor.run_session(jobs=args.jobs):
        report = run_crash_matrix(
            policies=tuple(args.policies),
            seeds=tuple(seeds),
            jobs=args.jobs,
            with_tail_faults=not args.no_tail_faults,
            read_error_rate=args.read_error_rate,
            write_error_rate=args.write_error_rate,
        )
    elapsed = time.time() - started

    kinds = ", ".join(f"{kind}={count}"
                      for kind, count in report["boundary_kinds"].items())
    print(f"chaos: {report['total_cases']} crash case(s) over "
          f"{len(report['policies'])} policy(ies) x "
          f"{len(report['seeds'])} seed(s)  [{elapsed:.1f}s]")
    print(f"   boundaries: {kinds}")
    if report["ok"]:
        print("   all invariants held: OK")
    else:
        for case_id in report["failures"]:
            print(f"   FAILED {case_id}")
    if args.out:
        Path(args.out).write_text(render_matrix_json(report) + "\n")
        print(f"   saved {args.out}")
    return 0 if report["ok"] else 1


def _export_metrics(out_path: str, sink) -> None:
    """Merge per-cell metrics and write Prometheus + JSONL files."""
    from .core.stats import BufferStats
    from .obs.export import (
        merge_snapshots,
        snapshot_jsonl_lines,
        write_jsonl,
        write_prometheus,
    )
    from .obs.metrics import Histogram

    merged = merge_snapshots(result.metrics for _, result in sink)
    path = write_prometheus(out_path, merged)
    lines: list[str] = []
    totals = BufferStats()
    for label, result in sink:
        lines.extend(snapshot_jsonl_lines(result.metrics, label))
        totals.merge(result.stats)
    jsonl_path = write_jsonl(Path(out_path).with_suffix(".jsonl"), lines)
    latency_count = sum(
        series.count for series in merged.series()
        if isinstance(series, Histogram) and series.name == "op_latency_ns"
    )
    print(f"   metrics: {len(sink)} cell(s), "
          f"op_latency_ns count={latency_count}, "
          f"stats reads+writes={totals.reads + totals.writes}")
    print(f"   wrote {path} and {jsonl_path}")


if __name__ == "__main__":
    sys.exit(main())
