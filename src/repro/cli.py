"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    repro-experiments --list
    repro-experiments fig6 fig7          # run two experiments
    repro-experiments --all --full       # everything, full effort
    repro-experiments --all --jobs 8     # fan cells out over 8 processes
    repro-experiments fig14 --out results/

Each experiment prints a paper-style text table and (with ``--out``)
writes a JSON result file for archival/plotting.
"""

from __future__ import annotations

import argparse
import sys
import time

from .bench.experiments import REGISTRY


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the Spitfire (SIGMOD '21) evaluation.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (e.g. fig6 table2)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment in paper order")
    parser.add_argument("--list", action="store_true",
                        help="list available experiment ids")
    parser.add_argument("--full", action="store_true",
                        help="full effort (longer runs, more points)")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes per experiment (default: 1; "
                             "results are identical at any job count)")
    parser.add_argument("--out", metavar="DIR",
                        help="directory for JSON result files")
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in REGISTRY:
            print(experiment_id)
        return 0

    chosen = list(REGISTRY) if args.all else args.experiments
    if not chosen:
        parser.error("no experiments selected (use ids, --all, or --list)")
    unknown = [e for e in chosen if e not in REGISTRY]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"choose from {', '.join(REGISTRY)}"
        )

    for experiment_id in chosen:
        started = time.time()
        result = REGISTRY[experiment_id](quick=not args.full, jobs=args.jobs)
        print(result.render())
        print(f"   [{experiment_id} took {time.time() - started:.1f}s]\n")
        if args.out:
            path = result.save_json(args.out)
            print(f"   saved {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
