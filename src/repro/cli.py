"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    repro-experiments --list
    repro-experiments fig6 fig7          # run two experiments
    repro-experiments --all --full       # everything, full effort
    repro-experiments --all --jobs 8     # fan cells out over 8 processes
    repro-experiments fig14 --out results/
    repro-experiments fig6 --metrics-out metrics.prom
    repro-experiments --all --live       # streaming worker progress
    repro-experiments fig6 --trace-decisions 0.05 \\
        --metrics-out m.prom --decision-trace-out decisions.jsonl
    repro-experiments serve-metrics fig6 --metrics-out m.prom
    repro-experiments serve --metrics-port 0 --slo-out slo.json
    repro-experiments serve-bench --seed 11 --ops 4000 --out slo.json
    repro-experiments serve-bench --overload   # bounded-p99 demo
    repro-experiments report results/run_summary.json
    repro-experiments report --diff OLD.json NEW.json
    repro-experiments chaos --seeds 1 7 --jobs 4 --out chaos.json --live

Each experiment prints a paper-style text table and (with ``--out``)
writes a JSON result file for archival/plotting.  ``--metrics-out``
attaches a :class:`~repro.obs.hub.MetricsHub` to every executor cell
and writes the merged metrics as Prometheus text exposition (plus a
``.jsonl`` snapshot stream next to it); the figure JSON itself is
byte-identical with or without metrics attached.

With ``--jobs N`` and more than one experiment selected, the whole run
becomes a **suite session**: one persistent worker pool is created and
warmed up front, and every experiment's cells flow through it —
several experiment drivers run concurrently, so the pool queue holds
cells from multiple figures at once and one figure's straggler tail
overlaps the next figure's start.  Output (tables, JSON files, metrics
exports) is printed and written in paper order and stays byte-identical
to a sequential ``--jobs 1`` run.

The ``chaos`` subcommand runs the crash-consistency matrix instead of
an experiment: every consistency-relevant boundary of a deterministic
reference workload gets a crash-and-recover replay, with WAL-tail and
torn-page hazards layered on top (see ``docs/FAULTS.md``).  The JSON
report is byte-identical for any ``--jobs`` value.

The live telemetry plane rides strictly out-of-band of all of this:
``--live`` streams worker progress (cells running, phase, percent,
ops/s, ETA) to stderr; ``--trace-decisions FRAC`` records a sampled
trace of the migration engine's admit/deny decisions; the
``serve-metrics`` subcommand exposes the Prometheus exporter over HTTP
*while the run executes* and asserts the final scrape is byte-for-byte
the file export; the ``report`` subcommand renders the
``run_summary.json`` a run leaves under ``--out`` and diffs two
``BENCH_repro.json``-style wall-clock reports into a regression table.
None of it changes result bytes — ``check_golden_figures.py
--with-telemetry`` regenerates figures with every observer attached and
requires identical JSON.
"""

from __future__ import annotations

import argparse
import contextlib
import contextvars
import json
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from .bench.experiments import REGISTRY


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "chaos":
        return chaos_main(argv[1:])
    if argv and argv[0] == "serve-metrics":
        return serve_metrics_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "serve-bench":
        return serve_bench_main(argv[1:])
    if argv and argv[0] == "report":
        return report_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the Spitfire (SIGMOD '21) evaluation.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (e.g. fig6 table2)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment in paper order")
    parser.add_argument("--list", action="store_true",
                        help="list available experiment ids")
    parser.add_argument("--full", action="store_true",
                        help="full effort (longer runs, more points)")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes per experiment (default: 1; "
                             "results are identical at any job count)")
    parser.add_argument("--out", metavar="DIR",
                        help="directory for JSON result files (plus a "
                             "run_summary.json digest for the report "
                             "subcommand)")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="collect per-cell metrics and write Prometheus "
                             "text exposition to PATH (and a JSONL snapshot "
                             "stream to PATH with a .jsonl suffix)")
    _add_telemetry_arguments(parser)
    parser.add_argument("--decision-trace-out", metavar="PATH",
                        help="write the sampled decision spans as JSONL to "
                             "PATH (implies per-cell collection; needs "
                             "--trace-decisions to record anything)")
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in REGISTRY:
            print(experiment_id)
        return 0

    chosen = _resolve_chosen(parser, args)
    _validate_trace_fraction(parser, args)

    from .bench import executor

    collect = bool(args.metrics_out or args.decision_trace_out)
    aggregator = None
    with contextlib.ExitStack() as stack:
        if args.live:
            aggregator = _attach_live(stack, executor)
        if args.trace_decisions:
            stack.enter_context(
                executor.decision_tracing(args.trace_decisions))
        sink, records = _run_experiments(chosen, args, collect=collect)
    if args.metrics_out:
        _export_metrics(args.metrics_out, sink)
    if args.decision_trace_out:
        _export_decision_traces(args.decision_trace_out, sink)
    if args.out:
        _write_run_summary(args.out, records, sink if collect else None,
                           aggregator)
    return 0


def _resolve_chosen(parser, args) -> list[str]:
    chosen = list(REGISTRY) if args.all else args.experiments
    if not chosen:
        parser.error("no experiments selected (use ids, --all, or --list)")
    unknown = [e for e in chosen if e not in REGISTRY]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"choose from {', '.join(REGISTRY)}"
        )
    return chosen


def _add_telemetry_arguments(parser) -> None:
    parser.add_argument("--live", action="store_true",
                        help="stream worker progress (cells, phase, ops/s, "
                             "ETA) to stderr while the run executes")
    parser.add_argument("--trace-decisions", type=float, default=None,
                        metavar="FRAC",
                        help="record migration/admission/eviction decision "
                             "spans for a hash-sampled page fraction "
                             "(0 < FRAC <= 1; result JSON is unchanged)")


def _validate_trace_fraction(parser, args) -> None:
    fraction = args.trace_decisions
    if fraction is not None and not 0.0 < fraction <= 1.0:
        parser.error("--trace-decisions must be in (0, 1]")


def _attach_live(stack: contextlib.ExitStack, executor):
    """Enter a live-telemetry scope on ``stack``; returns the aggregator."""
    from .bench.telemetry import ProgressAggregator, open_channel

    channel = open_channel()
    aggregator = ProgressAggregator(channel).start()
    stack.callback(channel.close)
    stack.callback(aggregator.stop)
    stack.enter_context(executor.telemetry_channel(channel))
    return aggregator


def _run_experiments(chosen: list[str], args,
                     collect: bool | None = None) -> tuple[list, list]:
    """Run the selected experiments.

    Returns ``(sink, records)``: the merged metrics sink (``(label,
    RunResult)`` pairs in paper order) and one summary record per
    experiment (id, title, wall time, series/point counts, decision
    digest) for the run summary.

    One experiment (or ``--jobs 1``) runs inline.  Several experiments
    with ``--jobs N`` open a suite-wide run session: the persistent
    pool is warmed once, then a few driver threads walk the experiment
    list concurrently so the shared pool schedules cells from multiple
    figures as one batch.  Each driver collects metrics into its own
    per-experiment sink; concatenating the sinks in paper order makes
    the merged export byte-identical to a sequential run.  Passing
    ``collect=False`` leaves any *ambient* metrics scope in charge
    (``serve-metrics`` enters one around the whole suite so the live
    endpoint sees cells as they finish).
    """
    from .bench import executor

    if collect is None:
        collect = bool(args.metrics_out)
    quick = not args.full

    def drive(experiment_id: str):
        started = time.time()
        if collect:
            with executor.metrics_collection() as sink:
                result = REGISTRY[experiment_id](quick=quick, jobs=args.jobs)
        else:
            sink = []
            result = REGISTRY[experiment_id](quick=quick, jobs=args.jobs)
        record = {
            "experiment_id": experiment_id,
            "title": result.title,
            "elapsed_s": round(time.time() - started, 3),
            "series": len(result.series),
            "points": sum(len(s.points) for s in result.series.values()),
        }
        digest = _decision_digest(sink)
        if digest is not None:
            record["decisions"] = digest
        return result, sink, record

    def emit(experiment_id: str, result, record: dict) -> None:
        print(result.render())
        print(f"   [{experiment_id} took {record['elapsed_s']:.1f}s]\n")
        if args.out:
            path = result.save_json(args.out)
            print(f"   saved {path}")

    merged: list = []
    records: list = []
    if args.jobs > 1 and len(chosen) > 1:
        with executor.run_session(jobs=args.jobs) as session:
            # Each driver runs in a copy of this thread's context, so
            # per-driver metrics scopes stay isolated while inheriting
            # any ambient scopes entered before the session.
            drivers = min(len(chosen), max(2, args.jobs))
            with ThreadPoolExecutor(max_workers=drivers) as threads:
                futures = [
                    threads.submit(contextvars.copy_context().run, drive,
                                   experiment_id)
                    for experiment_id in chosen
                ]
                for experiment_id, future in zip(chosen, futures):
                    result, sink, record = future.result()
                    emit(experiment_id, result, record)
                    merged.extend(sink)
                    records.append(record)
            print(f"   [{session.describe()}]")
    else:
        for experiment_id in chosen:
            result, sink, record = drive(experiment_id)
            emit(experiment_id, result, record)
            merged.extend(sink)
            records.append(record)
    return merged, records


def _decision_digest(sink) -> dict | None:
    """Aggregate per-cell decision-trace summaries, or None if untraced."""
    cells = spans = dropped = 0
    fraction = None
    for _, result in sink:
        trace = getattr(result, "decision_trace", None)
        if not trace:
            continue
        summary = trace["summary"]
        cells += 1
        spans += summary["spans_recorded"]
        dropped += summary["spans_dropped"]
        fraction = summary["sample_fraction"]
    if not cells:
        return None
    return {
        "cells": cells,
        "spans_recorded": spans,
        "spans_dropped": dropped,
        "sample_fraction": fraction,
    }


def chaos_main(argv: list[str]) -> int:
    """``repro-experiments chaos``: the crash-consistency matrix."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments chaos",
        description="Replay a deterministic workload, crashing at every "
                    "consistency-relevant boundary, and assert the ACID "
                    "invariant catalogue after recovery.",
    )
    parser.add_argument("--seeds", type=int, nargs="+", default=[1, 7, 23],
                        metavar="N", help="workload seeds (default: 1 7 23)")
    parser.add_argument("--seed", type=int, default=None, metavar="N",
                        help="shorthand for a single-seed run")
    parser.add_argument("--policies", nargs="+",
                        default=["DRAM_SSD", "SPITFIRE_LAZY", "SPITFIRE_EAGER"],
                        metavar="P", help="migration policies to cover")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes (default: 1; the report is "
                             "byte-identical at any job count)")
    parser.add_argument("--no-tail-faults", action="store_true",
                        help="clean crashes only (skip torn-write, "
                             "dropped-persist, and torn-page hazards)")
    parser.add_argument("--read-error-rate", type=float, default=0.0,
                        metavar="R", help="live transient read-fault rate "
                                          "during the workload (default: 0)")
    parser.add_argument("--write-error-rate", type=float, default=0.0,
                        metavar="R", help="live transient write-fault rate "
                                          "during the workload (default: 0)")
    parser.add_argument("--out", metavar="PATH",
                        help="write the JSON report to PATH")
    parser.add_argument("--live", action="store_true",
                        help="stream per-case progress to stderr while the "
                             "matrix runs (the report is unchanged)")
    args = parser.parse_args(argv)

    from .faults.crashpoints import (
        POLICIES,
        render_matrix_json,
        run_crash_matrix,
    )

    unknown = [p for p in args.policies if p not in POLICIES]
    if unknown:
        parser.error(
            f"unknown policy(ies): {', '.join(unknown)}; "
            f"choose from {', '.join(POLICIES)}"
        )
    seeds = [args.seed] if args.seed is not None else args.seeds

    from .bench import executor

    started = time.time()
    # The crash matrix shares the suite's persistent pool: a session
    # warms it once up front, then every CrashCase flows through it as
    # chunked tasks (the report stays byte-identical at any --jobs).
    with contextlib.ExitStack() as stack:
        if args.live:
            _attach_live(stack, executor)
        stack.enter_context(executor.run_session(jobs=args.jobs))
        report = run_crash_matrix(
            policies=tuple(args.policies),
            seeds=tuple(seeds),
            jobs=args.jobs,
            with_tail_faults=not args.no_tail_faults,
            read_error_rate=args.read_error_rate,
            write_error_rate=args.write_error_rate,
        )
    elapsed = time.time() - started

    kinds = ", ".join(f"{kind}={count}"
                      for kind, count in report["boundary_kinds"].items())
    print(f"chaos: {report['total_cases']} crash case(s) over "
          f"{len(report['policies'])} policy(ies) x "
          f"{len(report['seeds'])} seed(s)  [{elapsed:.1f}s]")
    print(f"   boundaries: {kinds}")
    if report["ok"]:
        print("   all invariants held: OK")
    else:
        for case_id in report["failures"]:
            print(f"   FAILED {case_id}")
    if args.out:
        Path(args.out).write_text(render_matrix_json(report) + "\n")
        print(f"   saved {args.out}")
    return 0 if report["ok"] else 1


def _export_metrics(out_path: str, sink) -> None:
    """Merge per-cell metrics and write Prometheus + JSONL files."""
    from .core.stats import BufferStats
    from .obs.export import (
        merge_snapshots,
        snapshot_jsonl_lines,
        write_jsonl,
        write_prometheus,
    )
    from .obs.metrics import Histogram

    merged = merge_snapshots(result.metrics for _, result in sink)
    path = write_prometheus(out_path, merged)
    lines: list[str] = []
    totals = BufferStats()
    for label, result in sink:
        lines.extend(snapshot_jsonl_lines(result.metrics, label))
        totals.merge(result.stats)
    jsonl_path = write_jsonl(Path(out_path).with_suffix(".jsonl"), lines)
    latency_count = sum(
        series.count for series in merged.series()
        if isinstance(series, Histogram) and series.name == "op_latency_ns"
    )
    print(f"   metrics: {len(sink)} cell(s), "
          f"op_latency_ns count={latency_count}, "
          f"stats reads+writes={totals.reads + totals.writes}")
    print(f"   wrote {path} and {jsonl_path}")


def _export_decision_traces(out_path: str, sink) -> None:
    """Write every cell's sampled decision spans as one JSONL stream."""
    from .obs.decisions import decision_trace_jsonl_lines
    from .obs.export import write_jsonl

    lines: list[str] = []
    cells = 0
    for label, result in sink:
        trace = getattr(result, "decision_trace", None)
        if not trace:
            continue
        cells += 1
        lines.extend(decision_trace_jsonl_lines(trace, label))
    path = write_jsonl(out_path, lines)
    print(f"   decision trace: {cells} cell(s), {len(lines)} span(s) "
          f"-> {path}")


def _write_run_summary(out_dir: str, records: list, sink,
                       aggregator) -> None:
    """Drop ``run_summary.json`` next to the per-figure JSON files."""
    from .bench.reporting import build_run_summary
    from .obs.export import merge_snapshots

    registry = None
    if sink is not None:
        registry = merge_snapshots(result.metrics for _, result in sink)
    summary = build_run_summary(
        records, registry=registry,
        telemetry=aggregator.summary() if aggregator is not None else None,
        generated_at=time.time(),
    )
    path = Path(out_dir) / "run_summary.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"   saved {path}")


def serve_metrics_main(argv: list[str]) -> int:
    """``repro-experiments serve-metrics``: live Prometheus endpoint.

    Runs the selected experiments with one suite-wide metrics scope and
    serves the merged registry over HTTP *while they execute* — every
    scrape sees all cells finished so far.  After the run, the final
    scrape is asserted byte-for-byte equal to the file export (when
    ``--metrics-out`` is given) or to the in-memory rendering, and a
    mismatch fails the command — the contract CI smoke-tests.
    """
    parser = argparse.ArgumentParser(
        prog="repro-experiments serve-metrics",
        description="Run experiments while serving the Prometheus "
                    "exporter over HTTP, scrapable live mid-run.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (e.g. fig6 table2)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment in paper order")
    parser.add_argument("--full", action="store_true",
                        help="full effort (longer runs, more points)")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="port to serve on (default: 0 = pick free)")
    parser.add_argument("--out", metavar="DIR",
                        help="directory for JSON result files")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="also write the final export to PATH and "
                             "assert the last scrape equals it exactly")
    _add_telemetry_arguments(parser)
    args = parser.parse_args(argv)

    chosen = _resolve_chosen(parser, args)
    _validate_trace_fraction(parser, args)

    from .bench import executor
    from .obs.export import merge_snapshots, prometheus_text
    from .obs.server import MetricsServer

    with contextlib.ExitStack() as stack:
        # One suite-wide metrics scope: the pool appends each finished
        # cell to this sink, so the provider renders a growing registry.
        sink = stack.enter_context(executor.metrics_collection())

        def provider() -> str:
            return prometheus_text(
                merge_snapshots(result.metrics for _, result in list(sink)))

        server = stack.enter_context(
            MetricsServer(provider, host=args.host, port=args.port))
        print(f"   serving live metrics at {server.url}")
        if args.live:
            _attach_live(stack, executor)
        if args.trace_decisions:
            stack.enter_context(
                executor.decision_tracing(args.trace_decisions))
        _run_experiments(chosen, args, collect=False)
        final_scrape = server.scrape()
        served = server.requests_served
    expected = provider()
    if args.metrics_out:
        _export_metrics(args.metrics_out, sink)
        expected = Path(args.metrics_out).read_text()
    matches = final_scrape == expected
    print(f"   served {served} scrape(s); final scrape "
          f"{'==' if matches else '!='} "
          f"{'file export' if args.metrics_out else 'merged registry'}")
    if not matches:
        print("   SERVE-METRICS FAILED: final scrape diverged from the "
              "export")
    return 0 if matches else 1


def serve_main(argv: list[str]) -> int:
    """``repro-experiments serve``: the live serving plane.

    Starts one shared buffer manager behind the asyncio stream server
    (see ``docs/SERVING.md`` for the wire protocol), serves until
    SIGTERM/SIGINT, then drains gracefully: the listener closes,
    admission flips to drain mode, in-flight dispatch finishes, dirty
    pages flush, and a final SLO report covers everything served.
    """
    parser = argparse.ArgumentParser(
        prog="repro-experiments serve",
        description="Serve one shared three-tier buffer manager to "
                    "concurrent client sessions until SIGTERM.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="port to serve on (default: 0 = pick free)")
    parser.add_argument("--policy", default="Spitfire-Eager",
                        help="Table 3 policy preset (default: "
                             "Spitfire-Eager)")
    parser.add_argument("--dram-gb", type=float, default=0.5)
    parser.add_argument("--nvm-gb", type=float, default=2.0)
    parser.add_argument("--ssd-gb", type=float, default=8.0)
    parser.add_argument("--tenants", type=int, default=4, metavar="N",
                        help="tenant count sessions may hello as "
                             "(default: 4)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--max-queue-depth", type=int, default=64,
                        metavar="N",
                        help="per-tenant admitted-but-unfinished cap; "
                             "beyond it arrivals shed (default: 64)")
    parser.add_argument("--rate-limit", type=float, default=None,
                        metavar="OPS_PER_S",
                        help="per-tenant token-bucket rate (default: off)")
    parser.add_argument("--no-admission", action="store_true",
                        help="disable shedding (unbounded queueing; for "
                             "the overload comparison only)")
    parser.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT",
                        help="serve /metrics, /healthz, /readyz on PORT "
                             "(0 = pick free; default: no endpoint)")
    parser.add_argument("--slo-out", metavar="PATH",
                        help="write the shutdown SLO report to PATH")
    parser.add_argument("--fault-seed", type=int, default=None, metavar="N",
                        help="inject seeded device faults under the live "
                             "load (chaos mode)")
    parser.add_argument("--fault-rate", type=float, default=0.01,
                        metavar="R",
                        help="transient read/write fault rate in chaos "
                             "mode (default: 0.01)")
    args = parser.parse_args(argv)

    import asyncio

    from .faults.plan import FaultPlan
    from .serve import AdmissionConfig, ServeConfig, SpitfireServer
    from .serve.slo import render_slo_report

    fault_plan = None
    if args.fault_seed is not None:
        fault_plan = FaultPlan.seeded(
            args.fault_seed,
            horizon_ops=1_000_000,
            read_error_rate=args.fault_rate,
            write_error_rate=args.fault_rate,
        )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        policy=args.policy,
        dram_gb=args.dram_gb,
        nvm_gb=args.nvm_gb,
        ssd_gb=args.ssd_gb,
        num_tenants=args.tenants,
        seed=args.seed,
        admission=AdmissionConfig(
            max_queue_depth=args.max_queue_depth,
            rate_ops_per_s=args.rate_limit,
            enabled=not args.no_admission,
        ),
        fault_plan=fault_plan,
        metrics_port=args.metrics_port,
        slo_out=args.slo_out,
    )

    async def run() -> dict:
        server = SpitfireServer(config)
        await server.start()
        print(f"   listening on {server.host}:{server.port}", flush=True)
        if server.metrics is not None:
            print(f"   metrics at {server.metrics.url}", flush=True)
        if fault_plan is not None:
            print(f"   chaos: fault plan seed={args.fault_seed} "
                  f"rate={args.fault_rate}", flush=True)
        server.install_signal_handlers()
        await server.wait_shutdown()
        print("   draining...", flush=True)
        return await server.shutdown()

    summary = asyncio.run(run())
    print(f"   drained: served={summary['served']} shed={summary['shed']} "
          f"flushed_pages={summary['flushed_pages']} "
          f"crashes={summary['crashes']}")
    print(render_slo_report(summary["slo"]))
    if args.slo_out:
        print(f"   saved {args.slo_out}")
    return 0


def serve_bench_main(argv: list[str]) -> int:
    """``repro-experiments serve-bench``: deterministic serving SLOs.

    The serving plane measured in virtual time: a seeded open-loop
    client fleet against the same dispatcher/admission code the live
    server runs, producing a byte-deterministic SLO report (identical
    across runs and ``--jobs`` values).  ``--overload`` runs the
    bounded-p99-versus-unbounded-queueing comparison instead.
    """
    parser = argparse.ArgumentParser(
        prog="repro-experiments serve-bench",
        description="Measure serving SLOs (latency quantiles, shed "
                    "rate, goodput) deterministically in virtual time.",
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--ops", type=int, default=4_000, metavar="N",
                        help="total arrivals across the fleet "
                             "(default: 4000)")
    parser.add_argument("--rate", type=float, default=40_000.0,
                        metavar="OPS_PER_S",
                        help="aggregate arrival rate (default: 40000)")
    parser.add_argument("--policy", default="Spitfire-Eager")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="schedule-generation workers (default: 1; "
                             "the report is byte-identical at any count)")
    parser.add_argument("--max-queue-depth", type=int, default=64,
                        metavar="N")
    parser.add_argument("--rate-limit", type=float, default=None,
                        metavar="OPS_PER_S",
                        help="per-tenant token-bucket rate (default: off)")
    parser.add_argument("--no-admission", action="store_true",
                        help="disable shedding (unbounded queueing)")
    parser.add_argument("--overload", action="store_true",
                        help="run the overload comparison (admission on "
                             "vs off at 30x the arrival rate)")
    parser.add_argument("--out", metavar="PATH",
                        help="write the SLO report JSON to PATH")
    args = parser.parse_args(argv)

    from .serve.bench import (
        ServeBenchConfig,
        run_overload_experiment,
        run_serve_bench,
    )
    from .serve.admission import AdmissionConfig
    from .serve.slo import render_slo_report, slo_report_json

    config = ServeBenchConfig(
        seed=args.seed,
        total_ops=args.ops,
        rate_ops_per_s=args.rate,
        policy=args.policy,
        admission=AdmissionConfig(
            max_queue_depth=args.max_queue_depth,
            rate_ops_per_s=args.rate_limit,
            enabled=not args.no_admission,
        ),
    )
    started = time.time()
    if args.overload:
        result = run_overload_experiment(config, jobs=args.jobs)
        summary = result["summary"]
        on = result["legs"]["admission_on"]["totals"]
        print(f"serve-bench overload: {on['arrivals']} arrivals at "
              f"{config.rate_ops_per_s * 30:,.0f} ops/s  "
              f"[{time.time() - started:.1f}s]")
        print(f"   admission on : shed={summary['shed_rate_on']:.1%}  "
              f"p99={summary['p99_on_ns']:,.0f}ns")
        print(f"   admission off: shed={summary['shed_rate_off']:.1%}  "
              f"p99={summary['p99_off_ns']:,.0f}ns")
        print(f"   bounded tail is {summary['p99_ratio']:.1f}x lower "
              f"with shedding")
        payload = result
    else:
        report = run_serve_bench(config, jobs=args.jobs)
        print(f"serve-bench: seed={args.seed} ops={args.ops} "
              f"jobs={args.jobs}  [{time.time() - started:.1f}s]")
        print(render_slo_report(report))
        payload = report
    if args.out:
        Path(args.out).write_text(slo_report_json(payload))
        print(f"   saved {args.out}")
    return 0


def report_main(argv: list[str]) -> int:
    """``repro-experiments report``: render a run summary or diff two
    wall-clock reports."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments report",
        description="Render a run_summary.json digest, or --diff two "
                    "BENCH_repro.json-style reports into a regression "
                    "table (exit 1 on regressions).",
    )
    parser.add_argument("summary", nargs="?",
                        help="run_summary.json written by a --out run")
    parser.add_argument("--diff", nargs=2, metavar=("OLD", "NEW"),
                        help="diff two BENCH_repro.json-style files")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        metavar="FRAC",
                        help="relative move a direction-aware metric may "
                             "make before --diff flags it (default: 0.10)")
    parser.add_argument("--show-unchanged", action="store_true",
                        help="include rows within tolerance in the table")
    args = parser.parse_args(argv)

    from .bench.reporting import (
        diff_bench_reports,
        render_bench_diff,
        render_run_summary,
    )

    if args.diff:
        old = json.loads(Path(args.diff[0]).read_text())
        new = json.loads(Path(args.diff[1]).read_text())
        diff = diff_bench_reports(old, new, tolerance=args.tolerance)
        print(render_bench_diff(diff, show_unchanged=args.show_unchanged))
        return 0 if diff["ok"] else 1
    if not args.summary:
        parser.error("provide a run_summary.json path or --diff OLD NEW")
    summary = json.loads(Path(args.summary).read_text())
    print(render_run_summary(summary))
    return 0


if __name__ == "__main__":
    sys.exit(main())
