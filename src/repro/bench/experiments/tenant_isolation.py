"""Multi-tenant noisy-neighbor isolation (beyond the paper's figures).

ROADMAP item 2's "cloud deployment" scenario: one DRAM–NVM–SSD
hierarchy shared by an OLTP tenant (small, skewed, latency-sensitive)
and a scan-heavy tenant (large, uniform, bandwidth-hungry).  Without
quotas the scan tenant's uniform reads flush the OLTP tenant's hot set
out of DRAM; with per-tenant frame quotas (hard partition or soft
min-share) the OLTP tail latency should stay where it was when the
tenant ran alone.

Four scenarios, same hierarchy and interleaver seed throughout:

* ``alone``  — the OLTP tenant by itself (the baseline tail),
* ``shared`` — OLTP + scan, no quotas (``QuotaMode.NONE``),
* ``hard``   — OLTP + scan, hard 50/50 partition,
* ``soft``   — OLTP + scan, soft 50/50 min-shares.

Expected shape: OLTP p99 under ``hard``/``soft`` within 20% of
``alone``, while ``shared`` degrades it by a bucket or more; ``soft``
additionally lends the OLTP tenant's unused frames to the scan tenant
(its mean latency lands below the hard partition's).
"""

from __future__ import annotations

from ...core.policy import SPITFIRE_LAZY
from ...hardware.pricing import HierarchyShape
from ...workloads.tenancy import TenantSpec
from ..reporting import ExperimentResult
from .common import Cell, CellBatch, effort

#: 2 GB DRAM / 8 GB NVM — small enough that the scan tenant's uniform
#: working set cannot fit and must churn whatever tier it is allowed to.
SHAPE = HierarchyShape(dram_gb=2.0, nvm_gb=8.0, ssd_gb=128.0)

#: Latency-sensitive tenant: skewed point ops over a database sized
#: comfortably *under* its 50% DRAM share, so an enforced quota keeps
#: the whole hot set resident.
OLTP = TenantSpec(name="oltp", mix="YCSB-BA", skew=0.9,
                  db_gigabytes=0.5, seed=7)

#: Noisy neighbor: uniform read-only ops over a database 16x DRAM, at
#: twice the OLTP tenant's arrival rate.
SCAN = TenantSpec(name="scan", mix="YCSB-RO", skew=0.0,
                  db_gigabytes=32.0, weight=2.0, seed=11)

#: Scenario name -> (tenant population, quota mode).
SCENARIOS = (
    ("alone", (OLTP,), "none"),
    ("shared", (OLTP, SCAN), "none"),
    ("hard", (OLTP, SCAN), "hard"),
    ("soft", (OLTP, SCAN), "soft"),
)

SHARES = (0.5, 0.5)


def run(quick: bool = True, jobs: int = 1) -> ExperimentResult:
    eff = effort(quick)
    result = ExperimentResult(
        "tenants", "Multi-tenant isolation: noisy neighbor vs frame quotas"
    )
    result.metadata.update(
        dram_gb=SHAPE.dram_gb, nvm_gb=SHAPE.nvm_gb,
        oltp_db_gb=OLTP.db_gigabytes, scan_db_gb=SCAN.db_gigabytes,
        scan_weight=SCAN.weight, shares=list(SHARES),
    )
    batch = CellBatch()
    for name, tenants, quota_mode in SCENARIOS:
        shares = SHARES if len(tenants) > 1 else ()
        batch.add(name, Cell.multi_tenant(
            name, SHAPE, SPITFIRE_LAZY, tenants,
            quota_mode=quota_mode, shares=shares, effort=eff,
            extra_worker_counts=(),
        ))
    runs = batch.run(jobs)

    for metric in ("p50_ns", "p99_ns", "mean_ns"):
        for tenant_id, tenant in ((0, "oltp"), (1, "scan")):
            series = result.new_series(f"{tenant} {metric}")
            for name, tenants, _ in SCENARIOS:
                if tenant_id >= len(tenants):
                    continue
                breakdown = runs[name].tenant_breakdown[tenant_id]
                series.add(name, breakdown[metric])

    oltp_p99 = result.series["oltp p99_ns"]
    baseline = oltp_p99.y_at("alone")
    for name in ("shared", "hard", "soft"):
        degradation = oltp_p99.y_at(name) / baseline - 1.0
        result.note(
            f"OLTP p99 under '{name}': {degradation:+.0%} vs running alone"
        )
    scan_mean = result.series["scan mean_ns"]
    lend = scan_mean.y_at("hard") / scan_mean.y_at("soft") - 1.0
    result.note(
        f"soft min-shares lend unused OLTP frames to the scan tenant: "
        f"scan mean latency {lend:+.0%} under hard vs soft"
    )
    return result
