"""Fig. 13 — Impact of data migration policies on NVM device lifetime (§6.5).

Compares the NVM media write volume of Spitfire-Lazy against HyMem on
the YCSB mixes, with fine-grained loading enabled in both (as the paper
does for fairness).

Expected shape: Spitfire-Lazy writes *more* to NVM than HyMem (the
paper reports 1.05-1.4x) — it eagerly installs pages in NVM and
bypasses DRAM to maximise runtime performance, trading some device
lifetime; HyMem's queue funnels fewer pages into NVM.
"""

from __future__ import annotations

from ...core.buffer_manager import BufferManagerConfig
from ...core.policy import HYMEM_POLICY, SPITFIRE_LAZY
from ...pages.granularity import OPTANE_LOADING_UNIT
from ..reporting import ExperimentResult
from .common import HYMEM_DB_GB, HYMEM_SHAPE, Cell, CellBatch, effort

WORKLOADS = ("YCSB-RO", "YCSB-BA", "YCSB-WH")


def run(quick: bool = True, jobs: int = 1) -> ExperimentResult:
    eff = effort(quick)
    result = ExperimentResult(
        "fig13", "Impact of Migration Policies on NVM Lifetime (write volume)"
    )
    result.metadata.update(
        dram_gb=HYMEM_SHAPE.dram_gb, nvm_gb=HYMEM_SHAPE.nvm_gb,
        db_gb=HYMEM_DB_GB, measure_ops=eff.measure_ops,
    )
    lazy_config = BufferManagerConfig(fine_grained=True,
                                      loading_unit=OPTANE_LOADING_UNIT)
    hymem_config = BufferManagerConfig(fine_grained=True, mini_pages=False,
                                       loading_unit=OPTANE_LOADING_UNIT)
    batch = CellBatch()
    for workload in WORKLOADS:
        batch.add(
            ("lazy", workload),
            Cell.ycsb(f"Spitfire-Lazy/{workload}", HYMEM_SHAPE, SPITFIRE_LAZY,
                      workload, HYMEM_DB_GB, effort=eff,
                      bm_config=lazy_config, extra_worker_counts=()),
        )
        batch.add(
            ("hymem", workload),
            Cell.ycsb(f"HyMem/{workload}", HYMEM_SHAPE, HYMEM_POLICY,
                      workload, HYMEM_DB_GB, effort=eff,
                      bm_config=hymem_config, extra_worker_counts=()),
        )
    runs = batch.run(jobs)
    lazy_series = result.new_series("Spitfire-Lazy")
    hymem_series = result.new_series("HyMem")
    for workload in WORKLOADS:
        lazy_series.add(workload, runs[("lazy", workload)].nvm_write_gb)
        hymem_series.add(workload, runs[("hymem", workload)].nvm_write_gb)
    for workload in WORKLOADS:
        hymem_gb = max(hymem_series.y_at(workload), 1e-9)
        result.note(
            f"{workload}: Spitfire-Lazy / HyMem NVM writes = "
            f"{lazy_series.y_at(workload) / hymem_gb:.2f}x "
            "(paper: 1.05-1.4x)"
        )
    return result
