"""Fig. 8 — Impact of bypassing NVM on writes to NVM (§6.3).

Measures the NVM media write volume while sweeping ``N`` (with D = 1)
on the YCSB mixes.

Expected shape: write volume grows with N everywhere; the relative
reduction from eager to lazy is largest on the read-only mix (the paper
reports 91.8x between N = 1 and N = 0.1 on YCSB-RO, versus only
1.3-1.6x on the write-heavy mixes, because updates must reach NVM
regardless).
"""

from __future__ import annotations

from ...core.policy import MigrationPolicy
from ..reporting import ExperimentResult
from .common import (
    POLICY_DB_GB,
    POLICY_SHAPE,
    SWEEP_PROBS,
    Cell,
    CellBatch,
    effort,
)

WORKLOADS = ("YCSB-RO", "YCSB-BA", "YCSB-WH")


def run(quick: bool = True, jobs: int = 1) -> ExperimentResult:
    eff = effort(quick)
    result = ExperimentResult(
        "fig8", "Impact of Bypassing NVM on Writes to NVM (write volume, GB)"
    )
    result.metadata.update(
        dram_gb=POLICY_SHAPE.dram_gb, nvm_gb=POLICY_SHAPE.nvm_gb,
        db_gb=POLICY_DB_GB, measure_ops=eff.measure_ops,
    )
    batch = CellBatch()
    for workload in WORKLOADS:
        for n in SWEEP_PROBS:
            policy = MigrationPolicy(d_r=1.0, d_w=1.0, n_r=n, n_w=n)
            batch.add(
                (workload, n),
                Cell.ycsb(f"{workload}/N={n}", POLICY_SHAPE, policy,
                          workload, POLICY_DB_GB, effort=eff,
                          extra_worker_counts=()),
            )
    runs = batch.run(jobs)
    for workload in WORKLOADS:
        series = result.new_series(workload)
        for n in SWEEP_PROBS:
            series.add(n, runs[(workload, n)].nvm_write_gb)
    for workload in WORKLOADS:
        series = result.series[workload]
        lazy = max(series.y_at(0.1), 1e-9)
        result.note(
            f"{workload}: eager/lazy(N=0.1) write volume = "
            f"{series.y_at(1.0) / lazy:.1f}x"
        )
    return result
