"""Ablation: the CLOCK replacement choice vs LRU and FIFO.

Both HyMem and Spitfire use CLOCK [34] for its low per-hit overhead.
This ablation (a design-choice check DESIGN.md calls out, not a paper
figure) runs the same Spitfire-Lazy configuration with CLOCK, exact
LRU, and FIFO replacement on a skewed YCSB mix.

Expected shape: CLOCK tracks LRU closely (it approximates recency)
while FIFO trails — it evicts hot pages on schedule regardless of use.
"""

from __future__ import annotations

from ...core.buffer_manager import BufferManagerConfig
from ...core.policy import SPITFIRE_LAZY
from ...hardware.pricing import HierarchyShape
from ...workloads.ycsb import YCSB_BA, YCSB_RO
from ..reporting import ExperimentResult
from .common import Cell, CellBatch, effort

SHAPE = HierarchyShape(dram_gb=4.0, nvm_gb=16.0, ssd_gb=100.0)
DB_GB = 50.0
POLICIES = ("clock", "lru", "fifo")


def run(quick: bool = True, jobs: int = 1) -> ExperimentResult:
    eff = effort(quick)
    result = ExperimentResult(
        "replacement", "Replacement-Policy Ablation (CLOCK vs LRU vs FIFO)"
    )
    result.metadata.update(dram_gb=SHAPE.dram_gb, nvm_gb=SHAPE.nvm_gb,
                           db_gb=DB_GB, skew=0.6)
    batch = CellBatch()
    for mix in (YCSB_RO, YCSB_BA):
        for replacement in POLICIES:
            batch.add(
                (mix.name, replacement),
                Cell.ycsb(f"{mix.name}/{replacement}", SHAPE, SPITFIRE_LAZY,
                          mix.name, DB_GB, skew=0.6, effort=eff,
                          bm_config=BufferManagerConfig(
                              replacement=replacement),
                          extra_worker_counts=()),
            )
    runs = batch.run(jobs)
    for mix in (YCSB_RO, YCSB_BA):
        series = result.new_series(mix.name)
        for replacement in POLICIES:
            series.add(replacement, runs[(mix.name, replacement)].throughput)
    for mix_name, series in result.series.items():
        clock_vs_lru = series.y_at("clock") / series.y_at("lru")
        clock_vs_fifo = series.y_at("clock") / series.y_at("fifo")
        result.note(
            f"{mix_name}: CLOCK/LRU = {clock_vs_lru:.2f}x, "
            f"CLOCK/FIFO = {clock_vs_fifo:.2f}x"
        )
    return result
