"""Fig. 9 — Impact of the storage hierarchy on the optimal policy (§6.3).

Fixes a 10 GB NVM buffer and varies the DRAM buffer over 1.25 / 2.5 /
5 GB (DRAM:NVM ratios 1:8, 1:4, 1:2), sweeping D on YCSB-RO.

Expected shape: at 1:8 the tiny DRAM buffer is not worth its migration
churn, so the optimal D collapses toward 0; as the ratio grows to 1:2
a lazy non-zero D (0.01) wins by keeping hot pages in DRAM with low
inclusivity.
"""

from __future__ import annotations

from ...core.policy import MigrationPolicy
from ...hardware.pricing import HierarchyShape
from ..reporting import ExperimentResult
from .common import SWEEP_PROBS, Cell, CellBatch, effort

NVM_GB = 10.0
DRAM_SIZES = (1.25, 2.5, 5.0)
DB_GB = 40.0


def run(quick: bool = True, jobs: int = 1) -> ExperimentResult:
    eff = effort(quick)
    result = ExperimentResult(
        "fig9", "Impact of Storage Hierarchy (D sweep per DRAM:NVM ratio)"
    )
    result.metadata.update(nvm_gb=NVM_GB, db_gb=DB_GB, workload="YCSB-RO")
    batch = CellBatch()
    for dram_gb in DRAM_SIZES:
        shape = HierarchyShape(dram_gb=dram_gb, nvm_gb=NVM_GB, ssd_gb=100.0)
        for d in SWEEP_PROBS:
            policy = MigrationPolicy(d_r=d, d_w=d, n_r=1.0, n_w=1.0)
            batch.add(
                (dram_gb, d),
                Cell.ycsb(f"dram={dram_gb:g}/D={d}", shape, policy,
                          "YCSB-RO", DB_GB, effort=eff,
                          extra_worker_counts=()),
            )
    runs = batch.run(jobs)
    for dram_gb in DRAM_SIZES:
        ratio = int(round(NVM_GB / dram_gb))
        series = result.new_series(f"1:{ratio}")
        for d in SWEEP_PROBS:
            series.add(d, runs[(dram_gb, d)].throughput)
    for label, series in result.series.items():
        result.note(f"ratio {label}: optimal D = {series.peak_x}")
    return result
