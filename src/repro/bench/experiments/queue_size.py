"""§6.5 "Admission Queue Size" — sizing HyMem's NVM admission queue.

The paper: "the size of the admission queue is not mentioned in [37].
So, we conduct an experiment to determine a performant queue size. We
observe that the queue size is proportional to the size of the NVM
buffer. In particular, setting the queue size to be half the number of
the pages in the NVM buffer works well on both workloads (~8 MB)."

This experiment sweeps the queue size as a fraction of the NVM buffer's
page count on YCSB-RO and TPC-C.  Expected shape: throughput rises with
the queue size (too-small queues forget pages before their second
consideration, so nothing gets admitted to NVM) and plateaus around the
one-half point — larger queues buy nothing.
"""

from __future__ import annotations

from ...core.buffer_manager import BufferManagerConfig
from ...core.policy import HYMEM_POLICY
from ...hardware.specs import DEFAULT_SCALE
from ...pages.granularity import OPTANE_LOADING_UNIT
from ..reporting import ExperimentResult
from .common import HYMEM_DB_GB, HYMEM_SHAPE, Cell, CellBatch, effort

#: Queue size as a fraction of the NVM buffer's page count.
QUEUE_FRACTIONS = (0.031, 0.125, 0.5, 1.0, 2.0)

WORKERS = 16


def run(quick: bool = True, jobs: int = 1) -> ExperimentResult:
    eff = effort(quick)
    result = ExperimentResult(
        "queue_size", "HyMem Admission Queue Size (§6.5 sizing experiment)"
    )
    result.metadata.update(
        dram_gb=HYMEM_SHAPE.dram_gb, nvm_gb=HYMEM_SHAPE.nvm_gb,
        db_gb=HYMEM_DB_GB, workers=WORKERS,
    )
    # The NVM buffer's page count, computable without building devices.
    nvm_pages = DEFAULT_SCALE.pages(HYMEM_SHAPE.nvm_gb)
    batch = CellBatch()
    for workload in ("YCSB-RO", "TPC-C"):
        for fraction in QUEUE_FRACTIONS:
            config = BufferManagerConfig(
                fine_grained=True, mini_pages=False,
                loading_unit=OPTANE_LOADING_UNIT,
                admission_queue_size=max(1, int(nvm_pages * fraction)),
            )
            label = f"{workload}/q={fraction:g}"
            if workload == "TPC-C":
                cell = Cell.tpcc(label, HYMEM_SHAPE, HYMEM_POLICY,
                                 HYMEM_DB_GB, effort=eff, bm_config=config,
                                 workers=WORKERS, extra_worker_counts=())
            else:
                cell = Cell.ycsb(label, HYMEM_SHAPE, HYMEM_POLICY, "YCSB-RO",
                                 HYMEM_DB_GB, effort=eff, bm_config=config,
                                 workers=WORKERS, extra_worker_counts=())
            batch.add((workload, fraction), cell)
    runs = batch.run(jobs)
    for workload in ("YCSB-RO", "TPC-C"):
        series = result.new_series(workload)
        for fraction in QUEUE_FRACTIONS:
            series.add(fraction, runs[(workload, fraction)].throughput)
    for workload in ("YCSB-RO", "TPC-C"):
        series = result.series[workload]
        half = series.y_at(0.5)
        tiny = series.y_at(QUEUE_FRACTIONS[0])
        double = series.y_at(2.0)
        result.note(
            f"{workload}: half-NVM queue vs tiny queue = {half / tiny:.2f}x; "
            f"doubling beyond half changes it by {double / half:.2f}x"
        )
    return result
