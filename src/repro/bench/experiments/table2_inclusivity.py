"""Table 2 — Inclusivity ratio of the DRAM & NVM buffers (§3.3, §6.3).

Measures the duplication between the DRAM and NVM buffers while
sweeping D (with N = 1) and N (with D = 1), for all four workloads.

Expected shape per the paper: the ratio is 0 at probability 0, grows
monotonically with the migration probability, and lazy policies keep it
well below the eager policy's (which lands near the DRAM:union capacity
ratio, ~0.25 for the 12.5/50 GB hierarchy).
"""

from __future__ import annotations

from ...core.policy import MigrationPolicy
from ..reporting import ExperimentResult
from .common import (
    POLICY_DB_GB,
    POLICY_SHAPE,
    SWEEP_PROBS,
    Cell,
    CellBatch,
    effort,
)

WORKLOADS = ("YCSB-RO", "YCSB-BA", "YCSB-WH", "TPC-C")


def _cell(workload: str, policy: MigrationPolicy, eff) -> Cell:
    label = f"{workload}/{policy.name or 'policy'}"
    if workload == "TPC-C":
        return Cell.tpcc(label, POLICY_SHAPE, policy, POLICY_DB_GB,
                         effort=eff, extra_worker_counts=())
    return Cell.ycsb(label, POLICY_SHAPE, policy, workload, POLICY_DB_GB,
                     effort=eff, extra_worker_counts=())


def run(quick: bool = True, jobs: int = 1) -> ExperimentResult:
    eff = effort(quick)
    result = ExperimentResult(
        "table2", "Inclusivity Ratio of DRAM & NVM Buffers"
    )
    result.metadata.update(
        dram_gb=POLICY_SHAPE.dram_gb, nvm_gb=POLICY_SHAPE.nvm_gb,
        db_gb=POLICY_DB_GB,
    )
    batch = CellBatch()
    for workload in WORKLOADS:
        for d in SWEEP_PROBS:
            policy = MigrationPolicy(d_r=d, d_w=d, n_r=1.0, n_w=1.0,
                                     name=f"D={d}")
            batch.add(("D", workload, d), _cell(workload, policy, eff))
    for workload in WORKLOADS:
        for n in SWEEP_PROBS:
            policy = MigrationPolicy(d_r=1.0, d_w=1.0, n_r=n, n_w=n,
                                     name=f"N={n}")
            batch.add(("N", workload, n), _cell(workload, policy, eff))
    runs = batch.run(jobs)
    for workload in WORKLOADS:
        series = result.new_series(f"Bypassing DRAM (D)/{workload}")
        for d in SWEEP_PROBS:
            series.add(d, runs[("D", workload, d)].inclusivity)
    for workload in WORKLOADS:
        series = result.new_series(f"Bypassing NVM (N)/{workload}")
        for n in SWEEP_PROBS:
            series.add(n, runs[("N", workload, n)].inclusivity)
    result.note("lower non-zero values are better (less duplication)")
    return result
