"""Table 2 — Inclusivity ratio of the DRAM & NVM buffers (§3.3, §6.3).

Measures the duplication between the DRAM and NVM buffers while
sweeping D (with N = 1) and N (with D = 1), for all four workloads.

Expected shape per the paper: the ratio is 0 at probability 0, grows
monotonically with the migration probability, and lazy policies keep it
well below the eager policy's (which lands near the DRAM:union capacity
ratio, ~0.25 for the 12.5/50 GB hierarchy).
"""

from __future__ import annotations

from ...core.policy import MigrationPolicy
from ...workloads.ycsb import MIXES
from ..reporting import ExperimentResult
from .common import (
    POLICY_DB_GB,
    POLICY_SHAPE,
    SWEEP_PROBS,
    build_bm,
    effort,
    run_tpcc,
    run_ycsb,
)

WORKLOADS = ("YCSB-RO", "YCSB-BA", "YCSB-WH", "TPC-C")


def _measure(workload: str, policy: MigrationPolicy, eff) -> float:
    bm = build_bm(POLICY_SHAPE, policy)
    if workload == "TPC-C":
        res = run_tpcc(bm, POLICY_DB_GB, eff=eff, extra_worker_counts=())
    else:
        res = run_ycsb(bm, MIXES[workload], POLICY_DB_GB, eff=eff,
                       extra_worker_counts=())
    return res.inclusivity


def run(quick: bool = True) -> ExperimentResult:
    eff = effort(quick)
    result = ExperimentResult(
        "table2", "Inclusivity Ratio of DRAM & NVM Buffers"
    )
    result.metadata.update(
        dram_gb=POLICY_SHAPE.dram_gb, nvm_gb=POLICY_SHAPE.nvm_gb,
        db_gb=POLICY_DB_GB,
    )
    for workload in WORKLOADS:
        series = result.new_series(f"Bypassing DRAM (D)/{workload}")
        for d in SWEEP_PROBS:
            policy = MigrationPolicy(d_r=d, d_w=d, n_r=1.0, n_w=1.0)
            series.add(d, _measure(workload, policy, eff))
    for workload in WORKLOADS:
        series = result.new_series(f"Bypassing NVM (N)/{workload}")
        for n in SWEEP_PROBS:
            policy = MigrationPolicy(d_r=1.0, d_w=1.0, n_r=n, n_w=n)
            series.add(n, _measure(workload, policy, eff))
    result.note("lower non-zero values are better (less duplication)")
    return result
