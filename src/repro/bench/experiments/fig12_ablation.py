"""Fig. 12 / Table 3 — Ablation study of HyMem and Spitfire (§6.5).

For each migration policy of Table 3 (HyMem, Spitfire-Eager,
Spitfire-Lazy) the two HyMem layout optimizations are added
incrementally: NONE → +fine-grained loading (256 B) → +mini pages, on
YCSB-RO and TPC-C over the §6.5 hierarchy.

Expected shape: the optimizations meaningfully help the eager policies
(the paper: +18-37% on YCSB-RO) but have minuscule impact on
Spitfire-Lazy, and even the *baseline* lazy configuration beats the
fully optimized eager ones — the migration policy dominates the layout
optimizations.
"""

from __future__ import annotations

from ...core.buffer_manager import BufferManagerConfig
from ...core.hymem import make_hymem
from ...core.policy import SPITFIRE_EAGER, SPITFIRE_LAZY, MigrationPolicy
from ...hardware.cost_model import StorageHierarchy
from ...pages.granularity import OPTANE_LOADING_UNIT
from ...workloads.ycsb import YCSB_RO
from ..reporting import ExperimentResult
from .common import HYMEM_DB_GB, HYMEM_SHAPE, effort, run_tpcc, run_ycsb

POLICIES = ("HyMem", "Spf-Eager", "Spf-Lazy")
VARIANTS = ("none", "+fine-grained", "+mini-page")
WORKERS = 16


def _build(policy_name: str, variant: str):
    fine = variant != "none"
    mini = variant == "+mini-page"
    if policy_name == "HyMem":
        hierarchy = StorageHierarchy(HYMEM_SHAPE)
        return make_hymem(
            hierarchy, fine_grained=fine, mini_pages=mini,
            loading_unit=OPTANE_LOADING_UNIT,
        )
    policy: MigrationPolicy = (
        SPITFIRE_EAGER if policy_name == "Spf-Eager" else SPITFIRE_LAZY
    )
    hierarchy = StorageHierarchy(HYMEM_SHAPE)
    config = BufferManagerConfig(
        fine_grained=fine, mini_pages=mini,
        loading_unit=OPTANE_LOADING_UNIT,
    )
    from ...core.buffer_manager import BufferManager

    return BufferManager(hierarchy, policy, config)


def run(quick: bool = True, jobs: int = 1) -> ExperimentResult:
    del jobs  # variants share one trace; runs are inherently serial
    eff = effort(quick)
    result = ExperimentResult(
        "fig12", "Ablation of HyMem's Optimizations Across Policies"
    )
    result.metadata.update(
        dram_gb=HYMEM_SHAPE.dram_gb, nvm_gb=HYMEM_SHAPE.nvm_gb,
        db_gb=HYMEM_DB_GB, loading_unit=256, workers=WORKERS,
    )
    for workload in ("YCSB-RO", "TPC-C"):
        for policy_name in POLICIES:
            series = result.new_series(f"{workload}/{policy_name}")
            for variant in VARIANTS:
                bm = _build(policy_name, variant)
                if workload == "TPC-C":
                    res = run_tpcc(bm, HYMEM_DB_GB, eff=eff, workers=WORKERS,
                                   extra_worker_counts=())
                else:
                    res = run_ycsb(bm, YCSB_RO, HYMEM_DB_GB, eff=eff,
                                   workers=WORKERS, extra_worker_counts=())
                series.add(variant, res.throughput)
    for workload in ("YCSB-RO", "TPC-C"):
        lazy_base = result.series[f"{workload}/Spf-Lazy"].y_at("none")
        best_other = max(
            result.series[f"{workload}/{p}"].y_at("+mini-page")
            for p in ("HyMem", "Spf-Eager")
        )
        result.note(
            f"{workload}: baseline Spf-Lazy / best fully-optimized eager = "
            f"{lazy_base / best_other:.2f}x (policy choice dominates layouts)"
        )
        eager = result.series[f"{workload}/Spf-Eager"]
        result.note(
            f"{workload}: fine-grained gain on Spf-Eager = "
            f"{eager.y_at('+fine-grained') / eager.y_at('none'):.2f}x"
        )
    return result
