"""Fig. 15 — Impact of database size (§6.7).

Five configurations, database size swept from 5 GB to 140 GB, on all
four workloads:

* three-tier (20 GB DRAM + 60 GB NVM): Spitfire-Lazy, Spitfire-Eager,
  and HyMem (with its optimizations enabled),
* DRAM-SSD with a 46 GB DRAM buffer,
* NVM-SSD with a 104 GB NVM buffer (both priced like the three-tier).

Expected shape: DRAM-SSD leads while the database is DRAM-cacheable and
falls off a cliff beyond; NVM-SSD starts lower (NVM latency) but keeps
its throughput flat the longest and wins at large sizes (and earlier on
the write-heavy mixes, where it pays no dirty-page flushes);
Spitfire-Lazy is the best three-tier policy essentially everywhere.
"""

from __future__ import annotations

from ...core.buffer_manager import BufferManagerConfig
from ...core.policy import (
    DRAM_SSD_POLICY,
    HYMEM_POLICY,
    NVM_SSD_POLICY,
    SPITFIRE_EAGER,
    SPITFIRE_LAZY,
)
from ...hardware.pricing import HierarchyShape
from ...pages.granularity import OPTANE_LOADING_UNIT
from ..reporting import ExperimentResult
from .common import COARSE_SCALE, Cell, CellBatch, effort

THREE_TIER = HierarchyShape(dram_gb=20.0, nvm_gb=60.0, ssd_gb=200.0)
DRAM_SSD = HierarchyShape(dram_gb=46.0, nvm_gb=0.0, ssd_gb=200.0)
NVM_SSD = HierarchyShape(dram_gb=0.0, nvm_gb=104.0, ssd_gb=200.0)

DB_SIZES_FULL = (5.0, 20.0, 35.0, 50.0, 65.0, 80.0, 95.0, 110.0, 125.0, 140.0)
DB_SIZES_QUICK = (5.0, 35.0, 65.0, 95.0, 140.0)

CONFIGS = ("Spf-Lazy", "Spf-Eager", "HyMem", "DRAM-SSD", "NVM-SSD")
WORKLOADS = ("YCSB-RO", "YCSB-BA", "YCSB-WH", "TPC-C")
WORKERS = 8


#: For fairness the paper enables HyMem's optimizations on the
#: three-tier configurations (Spitfire and HyMem) in this experiment.
_FINE_CONFIG = BufferManagerConfig(fine_grained=True, mini_pages=True,
                                   loading_unit=OPTANE_LOADING_UNIT)


def _cell(config: str, workload: str, db_gb: float, eff) -> Cell:
    if config == "HyMem":
        shape, policy, bm_config = THREE_TIER, HYMEM_POLICY, _FINE_CONFIG
    elif config == "DRAM-SSD":
        shape, policy, bm_config = DRAM_SSD, DRAM_SSD_POLICY, None
    elif config == "NVM-SSD":
        shape, policy, bm_config = NVM_SSD, NVM_SSD_POLICY, None
    else:
        shape = THREE_TIER
        policy = SPITFIRE_LAZY if config == "Spf-Lazy" else SPITFIRE_EAGER
        bm_config = _FINE_CONFIG
    label = f"{workload}/{config}/{db_gb:g}GB"
    kwargs = dict(effort=eff, scale=COARSE_SCALE, bm_config=bm_config,
                  workers=WORKERS, extra_worker_counts=())
    if workload == "TPC-C":
        return Cell.tpcc(label, shape, policy, db_gb, **kwargs)
    return Cell.ycsb(label, shape, policy, workload, db_gb, **kwargs)


def run(quick: bool = True, jobs: int = 1) -> ExperimentResult:
    eff = effort(quick)
    sizes = DB_SIZES_QUICK if quick else DB_SIZES_FULL
    result = ExperimentResult("fig15", "Impact of Database Size")
    result.metadata.update(
        three_tier=f"{THREE_TIER.dram_gb:g}+{THREE_TIER.nvm_gb:g} GB",
        dram_ssd=f"{DRAM_SSD.dram_gb:g} GB",
        nvm_ssd=f"{NVM_SSD.nvm_gb:g} GB",
        workers=WORKERS,
    )
    batch = CellBatch()
    for workload in WORKLOADS:
        for config in CONFIGS:
            for db_gb in sizes:
                batch.add((workload, config, db_gb),
                          _cell(config, workload, db_gb, eff))
    runs = batch.run(jobs)
    for workload in WORKLOADS:
        for config in CONFIGS:
            series = result.new_series(f"{workload}/{config}")
            for db_gb in sizes:
                series.add(db_gb, runs[(workload, config, db_gb)].throughput)
    small, large = sizes[0], sizes[-1]
    for workload in WORKLOADS:
        dram = result.series[f"{workload}/DRAM-SSD"]
        nvm = result.series[f"{workload}/NVM-SSD"]
        lazy = result.series[f"{workload}/Spf-Lazy"]
        eager = result.series[f"{workload}/Spf-Eager"]
        result.note(
            f"{workload}: at {small:g} GB DRAM-SSD/NVM-SSD = "
            f"{dram.y_at(small) / nvm.y_at(small):.2f}x; at {large:g} GB = "
            f"{dram.y_at(large) / nvm.y_at(large):.2f}x; "
            f"Spf-Lazy/Spf-Eager at {large:g} GB = "
            f"{lazy.y_at(large) / eager.y_at(large):.2f}x"
        )
    return result
