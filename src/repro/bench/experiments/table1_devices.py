"""Table 1 — Device characteristics.

Renders the device specification table the whole cost model is seeded
from, and verifies the transcription invariants (NVM sits between DRAM
and SSD on every latency/bandwidth axis).
"""

from __future__ import annotations

from ...hardware.specs import DEFAULT_SPECS, Tier
from ..reporting import ExperimentResult


def run(quick: bool = True, jobs: int = 1) -> ExperimentResult:
    del jobs  # a static table; nothing to parallelise
    result = ExperimentResult("table1", "Device Characteristics (Table 1)")
    result.metadata["source"] = "transcribed from the paper"
    rows = {
        "seq read latency (ns)": lambda s: s.seq_read_latency_ns,
        "rand read latency (ns)": lambda s: s.rand_read_latency_ns,
        "seq read BW (GB/s)": lambda s: s.seq_read_bw / 1e9,
        "rand read BW (GB/s)": lambda s: s.rand_read_bw / 1e9,
        "seq write BW (GB/s)": lambda s: s.seq_write_bw / 1e9,
        "rand write BW (GB/s)": lambda s: s.rand_write_bw / 1e9,
        "price ($/GB)": lambda s: s.price_per_gb,
        "media granularity (B)": lambda s: float(s.media_granularity),
    }
    for label, getter in rows.items():
        series = result.new_series(label)
        for tier in (Tier.DRAM, Tier.NVM, Tier.SSD):
            series.add(tier.name, getter(DEFAULT_SPECS[tier]))
    result.note("NVM bridges DRAM and SSD on every latency and bandwidth axis")
    return result
