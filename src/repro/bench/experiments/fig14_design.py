"""Fig. 14 — Storage system design (§6.6).

Grid-searches DRAM ∈ {0, 4, 8, 16, 32} GB x NVM ∈ {0, 40, 80, 160} GB
over a 200 GB SSD, running each candidate with the policy the paper
assigns to its class (Spitfire-Lazy for three-tier, the native policy
for two-tier), on a 100 GB database with skew 0.5 and 8 workers, and
ranks by performance/price.

Expected shape: (a) the cost grid is linear in the device prices;
(b) read-only favours a small-DRAM + large-NVM three-tier hierarchy;
(c) balanced favours 8 GB DRAM + 80 GB NVM with NVM-SSD close behind;
(d) write-heavy's best perf/price point is the NVM-SSD hierarchy.
"""

from __future__ import annotations

from ...design.grid_search import (
    enumerate_shapes,
    grid_search,
)
from ...hardware.pricing import hierarchy_cost
from ..reporting import ExperimentResult
from .common import COARSE_SCALE, Cell, effort

DB_GB = 100.0
SKEW = 0.5
WORKERS = 8
WORKLOADS = ("YCSB-RO", "YCSB-BA", "YCSB-WH")


def run(quick: bool = True, jobs: int = 1) -> ExperimentResult:
    eff = effort(quick)
    result = ExperimentResult(
        "fig14", "Storage System Design (perf/price grid search)"
    )
    result.metadata.update(db_gb=DB_GB, skew=SKEW, workers=WORKERS)
    shapes = enumerate_shapes()

    # (a) the cost grid, straight from Table 1 prices.
    cost_series = result.new_series("cost ($)")
    for shape in shapes:
        cost_series.add(f"D{shape.dram_gb:g}/N{shape.nvm_gb:g}",
                        hierarchy_cost(shape))

    for workload in WORKLOADS:

        def cell_factory(shape, policy, _workload=workload):
            return Cell.ycsb(f"{_workload}/{shape.label}", shape, policy,
                             _workload, DB_GB, skew=SKEW, effort=eff,
                             scale=COARSE_SCALE, workers=WORKERS,
                             extra_worker_counts=())

        search = grid_search(workload, shapes=shapes, scale=COARSE_SCALE,
                             cell_factory=cell_factory, jobs=jobs)
        series = result.new_series(f"{workload} (ops/s/$)")
        for point in search.points:
            series.add(
                f"D{point.shape.dram_gb:g}/N{point.shape.nvm_gb:g}",
                point.perf_per_price,
            )
        best = search.best()
        result.note(
            f"{workload}: best perf/price at DRAM={best.shape.dram_gb:g} GB, "
            f"NVM={best.shape.nvm_gb:g} GB ({best.label}) — "
            f"{best.perf_per_price:.0f} ops/s/$"
        )
    return result
