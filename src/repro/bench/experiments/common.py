"""Shared builders for the per-figure experiment modules.

Each experiment constructs hierarchies/buffer managers through these
helpers so that protocol choices (warm-up, priming, WAL, scaling) are
consistent across figures, exactly as the paper uses one platform and
measurement protocol for its whole evaluation section.
"""

from __future__ import annotations

from ...core.buffer_manager import BufferManager, BufferManagerConfig
from ...core.policy import MigrationPolicy
from ...hardware.cost_model import StorageHierarchy
from ...hardware.pricing import HierarchyShape
from ...hardware.specs import DEFAULT_SCALE, SimulationScale
from ...workloads.tpcc import TpccWorkload
from ...workloads.ycsb import YcsbMix, YcsbWorkload
from ..executor import (  # noqa: F401  (re-exported for callers/tests)
    FULL,
    QUICK,
    Cell,
    CellBatch,
    Effort,
    effort,
    run_cells,
    run_session,
    run_tasks,
)
from ..harness import RunConfig, RunResult, WorkloadRunner

#: Coarser scale for the large-database experiments (Figs. 5, 14, 15)
#: so that 300 GB-class configurations stay fast.
COARSE_SCALE = SimulationScale(pages_per_gb=16)


def build_bm(
    shape: HierarchyShape,
    policy: MigrationPolicy,
    scale: SimulationScale = DEFAULT_SCALE,
    bm_config: BufferManagerConfig | None = None,
    memory_mode: bool = False,
    seed: int = 42,
) -> BufferManager:
    """A fresh hierarchy + buffer manager for one run."""
    hierarchy = StorageHierarchy(shape, scale, memory_mode=memory_mode)
    if bm_config is None:
        bm_config = BufferManagerConfig(seed=seed)
    return BufferManager(hierarchy, policy, bm_config)


def run_ycsb(
    bm: BufferManager,
    mix: YcsbMix,
    db_gb: float,
    scale: SimulationScale = DEFAULT_SCALE,
    skew: float = 0.3,
    eff: Effort = QUICK,
    workers: int = 1,
    extra_worker_counts: tuple[int, ...] = (16,),
    with_wal: bool = True,
    seed: int = 3,
) -> RunResult:
    """One measured YCSB run on a prepared buffer manager."""
    tuples_per_page = 16  # 16 KB pages of 1 KB tuples
    num_tuples = scale.pages(db_gb) * tuples_per_page
    workload = YcsbWorkload(num_tuples=num_tuples, mix=mix, skew=skew, seed=seed)
    runner = WorkloadRunner(
        bm,
        RunConfig(
            warmup_ops=eff.warmup_ops,
            measure_ops=eff.measure_ops,
            workers=workers,
            with_wal=with_wal,
        ),
    )
    return runner.measure_ycsb(workload, extra_worker_counts=extra_worker_counts)


def run_tpcc(
    bm: BufferManager,
    db_gb: float,
    scale: SimulationScale = DEFAULT_SCALE,
    eff: Effort = QUICK,
    workers: int = 1,
    extra_worker_counts: tuple[int, ...] = (16,),
    with_wal: bool = True,
    seed: int = 3,
) -> RunResult:
    """One measured TPC-C run on a prepared buffer manager."""
    workload = TpccWorkload(db_gigabytes=db_gb, scale=scale, seed=seed)
    runner = WorkloadRunner(
        bm,
        RunConfig(
            warmup_ops=eff.warmup_ops,
            measure_ops=eff.measure_ops,
            workers=workers,
            with_wal=with_wal,
        ),
    )
    return runner.measure_tpcc(workload, extra_worker_counts=extra_worker_counts)


#: The probability levels swept by the policy experiments (Figs. 6-9).
SWEEP_PROBS = (0.0, 0.01, 0.1, 1.0)

#: The §6.3 hierarchy: 12.5 GB DRAM + 50 GB NVM over SSD.
POLICY_SHAPE = HierarchyShape(dram_gb=12.5, nvm_gb=50.0, ssd_gb=200.0)

#: The §6.5 hierarchy: 8 GB DRAM + 32 GB NVM over SSD, ~20 GB database.
HYMEM_SHAPE = HierarchyShape(dram_gb=8.0, nvm_gb=32.0, ssd_gb=100.0)
HYMEM_DB_GB = 20.0

#: §6.3's database: 100 GB YCSB / TPC-C.
POLICY_DB_GB = 100.0
