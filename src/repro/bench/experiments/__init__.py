"""One experiment module per table/figure of the paper's evaluation.

Each module exposes ``run(quick: bool = True) -> ExperimentResult``.
:data:`REGISTRY` maps experiment ids to their run functions so the CLI
and the benchmark suite can enumerate them.
"""

from . import (
    fig5_memory_mode,
    queue_size,
    recovery_overhead,
    replacement_ablation,
    fig6_bypass_dram,
    fig7_bypass_nvm,
    fig8_nvm_writes,
    fig9_hierarchy_ratio,
    fig10_adaptive,
    fig11_granularity,
    fig12_ablation,
    fig13_lifetime,
    fig14_design,
    fig15_dbsize,
    table1_devices,
    table2_inclusivity,
    tenant_isolation,
)

#: Experiment id -> run callable, in paper order.
REGISTRY = {
    "table1": table1_devices.run,
    "fig5": fig5_memory_mode.run,
    "table2": table2_inclusivity.run,
    "fig6": fig6_bypass_dram.run,
    "fig7": fig7_bypass_nvm.run,
    "fig8": fig8_nvm_writes.run,
    "fig9": fig9_hierarchy_ratio.run,
    "fig10": fig10_adaptive.run,
    "fig11": fig11_granularity.run,
    "fig12": fig12_ablation.run,
    "fig13": fig13_lifetime.run,
    "fig14": fig14_design.run,
    "fig15": fig15_dbsize.run,
    # Ablations beyond the paper's numbered figures.
    "queue_size": queue_size.run,
    "recovery": recovery_overhead.run,
    "replacement": replacement_ablation.run,
    "tenants": tenant_isolation.run,
}

__all__ = ["REGISTRY"]
