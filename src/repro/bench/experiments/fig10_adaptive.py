"""Fig. 10 — Adaptive data migration (§6.4).

Starts Spitfire with a fully eager policy (D = 1, N = 1) on a 2.5 GB
DRAM + 10 GB NVM hierarchy and lets the simulated-annealing controller
adapt the policy epoch by epoch on YCSB-RO and YCSB-BA.

Expected shape: per-epoch throughput climbs and converges as the
annealer cools (the paper reports +52% on YCSB-RO), and the best
discovered policy is lazy for DRAM (D < 1).
"""

from __future__ import annotations

from ...core.policy import SPITFIRE_EAGER
from ...hardware.pricing import HierarchyShape
from ...tuning.controller import AdaptiveController
from ...workloads.ycsb import MIXES, YcsbWorkload
from ..harness import RunConfig, WorkloadRunner
from ..reporting import ExperimentResult
from .common import build_bm

SHAPE = HierarchyShape(dram_gb=2.5, nvm_gb=10.0, ssd_gb=100.0)
DB_GB = 40.0

EPOCHS_QUICK = 40
EPOCHS_FULL = 100
OPS_PER_EPOCH_QUICK = 3_000
OPS_PER_EPOCH_FULL = 8_000


def run(quick: bool = True, jobs: int = 1) -> ExperimentResult:
    del jobs  # the adaptive controller is one sequential simulation
    epochs = EPOCHS_QUICK if quick else EPOCHS_FULL
    ops_per_epoch = OPS_PER_EPOCH_QUICK if quick else OPS_PER_EPOCH_FULL
    result = ExperimentResult(
        "fig10", "Adaptive Data Migration (per-epoch throughput)"
    )
    result.metadata.update(
        dram_gb=SHAPE.dram_gb, nvm_gb=SHAPE.nvm_gb, db_gb=DB_GB,
        epochs=epochs, ops_per_epoch=ops_per_epoch, start_policy="eager",
    )
    from ...hardware.specs import DEFAULT_SCALE

    for workload_name in ("YCSB-RO", "YCSB-BA"):
        bm = build_bm(SHAPE, SPITFIRE_EAGER)
        workload = YcsbWorkload(
            num_tuples=DEFAULT_SCALE.pages(DB_GB) * 16,
            mix=MIXES[workload_name], skew=0.3, seed=3,
        )
        runner = WorkloadRunner(bm, RunConfig(warmup_ops=0, measure_ops=0))
        runner.allocate_database(workload.num_pages)
        # Deliberately *no* buffer priming: Fig. 10 shows the journey from
        # a cold eager start to the tuned steady state.
        controller = AdaptiveController(bm, workers=1, seed=11)
        controller.run(
            workload_step=lambda: runner.run_ycsb_op(workload),
            epochs=epochs,
            ops_per_epoch=ops_per_epoch,
        )
        series = result.new_series(workload_name)
        for record in controller.records:
            series.add(record.epoch, record.throughput)
        best = controller.best_policy
        first = controller.records[0].throughput
        tail = controller.throughput_series()[-max(3, epochs // 10):]
        converged = sum(tail) / len(tail)
        result.note(
            f"{workload_name}: eager start {first / 1e3:.0f} kOps -> "
            f"converged {converged / 1e3:.0f} kOps "
            f"({converged / max(first, 1e-9):.2f}x); "
            f"best policy D=({best.d_r}, {best.d_w}) N=({best.n_r}, {best.n_w})"
        )
    return result
