"""Fig. 5 — Benefits of NVM and app-direct mode (§6.2).

Compares two *equi-cost* hierarchies while the database grows from
5 GB to 305 GB:

* **DRAM-SSD (memory mode)** — a 140 GB buffer served by NVM with the
  platform's DRAM acting as a hardware-managed L4 cache; volatile, so
  dirty pages must still be flushed to SSD.
* **NVM-SSD (app direct)** — a 340 GB NVM buffer managed directly;
  persistent, so dirty NVM pages never flush.

Expected shape: memory mode wins (slightly) while the working set is
DRAM-cacheable; app-direct NVM-SSD wins big once the database outgrows
the 140 GB memory-mode buffer (up to 6x on YCSB-RO in the paper, 2.28x
on YCSB-BA/TPC-C).
"""

from __future__ import annotations

from ...core.policy import DRAM_SSD_POLICY, NVM_SSD_POLICY
from ...hardware.pricing import HierarchyShape
from ..reporting import ExperimentResult
from .common import COARSE_SCALE, Cell, CellBatch, effort

#: Memory-mode server of §6.2: 96 GB DRAM cache, 140 GB buffer capacity.
MEMORY_MODE_SHAPE = HierarchyShape(dram_gb=96.0, nvm_gb=140.0, ssd_gb=400.0)
#: Equi-cost app-direct configuration: 340 GB NVM buffer.
NVM_SSD_SHAPE = HierarchyShape(dram_gb=0.0, nvm_gb=340.0, ssd_gb=400.0)

DB_SIZES_FULL = (5.0, 25.0, 45.0, 85.0, 125.0, 165.0, 225.0, 265.0, 305.0)
DB_SIZES_QUICK = (5.0, 45.0, 125.0, 225.0, 305.0)

WORKERS = 16


def _cell(workload_name: str, db_gb: float, memory_mode: bool, eff) -> Cell:
    shape = MEMORY_MODE_SHAPE if memory_mode else NVM_SSD_SHAPE
    policy = DRAM_SSD_POLICY if memory_mode else NVM_SSD_POLICY
    mode = "mem" if memory_mode else "appdirect"
    kwargs = dict(effort=eff, scale=COARSE_SCALE, memory_mode=memory_mode,
                  workers=WORKERS, extra_worker_counts=())
    if workload_name == "TPC-C":
        return Cell.tpcc(f"{workload_name}/{mode}/{db_gb:g}GB", shape, policy,
                         db_gb, **kwargs)
    return Cell.ycsb(f"{workload_name}/{mode}/{db_gb:g}GB", shape, policy,
                     workload_name, db_gb, **kwargs)


def run(quick: bool = True, jobs: int = 1) -> ExperimentResult:
    eff = effort(quick)
    sizes = DB_SIZES_QUICK if quick else DB_SIZES_FULL
    result = ExperimentResult(
        "fig5", "Benefits of NVM and App-Direct Mode (throughput, 16 workers)"
    )
    result.metadata.update(
        memory_mode_buffer_gb=MEMORY_MODE_SHAPE.nvm_gb,
        nvm_ssd_buffer_gb=NVM_SSD_SHAPE.nvm_gb,
        workers=WORKERS,
    )
    batch = CellBatch()
    for workload in ("YCSB-RO", "YCSB-BA", "TPC-C"):
        for memory_mode in (False, True):
            for db_gb in sizes:
                batch.add((workload, memory_mode, db_gb),
                          _cell(workload, db_gb, memory_mode, eff))
    runs = batch.run(jobs)
    for workload in ("YCSB-RO", "YCSB-BA", "TPC-C"):
        for memory_mode in (False, True):
            label = f"{workload}/{'DRAM-SSD(mem)' if memory_mode else 'NVM-SSD'}"
            series = result.new_series(label)
            for db_gb in sizes:
                series.add(db_gb,
                           runs[(workload, memory_mode, db_gb)].throughput)
    # Headline comparison the paper calls out.
    for workload in ("YCSB-RO", "YCSB-BA", "TPC-C"):
        nvm = result.series[f"{workload}/NVM-SSD"]
        mem = result.series[f"{workload}/DRAM-SSD(mem)"]
        largest = sizes[-1]
        ratio = nvm.y_at(largest) / max(mem.y_at(largest), 1e-9)
        result.note(
            f"{workload}: NVM-SSD / memory-mode at {largest:.0f} GB = {ratio:.2f}x"
        )
    return result
