"""Ablation: app-direct NVM shrinks recovery work (§6.2's second claim).

The paper argues for app-direct mode partly because "SPITFIRE exploits
the persistence property of NVM to reduce the overhead of the recovery
protocol by eliminating the need to flush modified pages in the NVM
buffer."  This ablation quantifies that by running the same update-heavy
engine workload on a DRAM-SSD and a DRAM-NVM-SSD hierarchy and crashing
both at the same point.

Two costs are measured per hierarchy, from the same update-heavy run:

* the *runtime* recovery-protocol overhead — how many dirty pages the
  checkpointer flushed and how many bytes that pushed to SSD (on the
  three-tier hierarchy, flushes persist into the NVM buffer instead);
* the *post-crash* work — redo operations and simulated recovery time.

Expected shape: the three-tier hierarchy moves (almost) no checkpoint
bytes to SSD and recovers quickly because most modified pages are
already durable in the NVM buffer.
"""

from __future__ import annotations

from ...core.policy import DRAM_SSD_POLICY, SPITFIRE_LAZY
from ...engine.engine import EngineConfig, StorageEngine
from ...hardware.cost_model import StorageHierarchy
from ...hardware.pricing import HierarchyShape
from ...hardware.specs import SimulationScale, Tier
from ...wal.recovery import RecoveryManager
from ...workloads.ycsb import YCSB_WH
from ...workloads.ycsb_engine import YcsbEngine
from ..reporting import ExperimentResult

SCALE = SimulationScale(pages_per_gb=8)
CONFIGS = {
    "DRAM-SSD": (HierarchyShape(4.0, 0.0, 100.0), DRAM_SSD_POLICY),
    "DRAM-NVM-SSD": (HierarchyShape(4.0, 16.0, 100.0), SPITFIRE_LAZY),
}

OPS_QUICK = 1_500
OPS_FULL = 6_000
NUM_TUPLES = 1_500


def _one_config(label: str, operations: int) -> dict[str, float]:
    shape, policy = CONFIGS[label]
    hierarchy = StorageHierarchy(shape, SCALE)
    engine = StorageEngine(
        hierarchy, policy,
        config=EngineConfig(checkpoint_interval_ops=200),
    )
    engine.log.group_commit_size = 1
    driver = YcsbEngine(engine, num_tuples=NUM_TUPLES, mix=YCSB_WH, seed=3)
    driver.load()
    hierarchy.reset_accounting()  # measure the run, not the load
    ssd = hierarchy.device(Tier.SSD)
    log_bytes_before = engine.log.stats.bytes_appended
    driver.run(operations)
    # Runtime recovery-protocol overhead: checkpoint flush traffic that
    # reached the SSD beyond the WAL itself.
    ssd_write_bytes = ssd.snapshot_counters().media_write_bytes
    wal_bytes = engine.log.stats.bytes_appended - log_bytes_before
    flush_bytes = max(0.0, ssd_write_bytes - wal_bytes)
    pages_flushed = engine.checkpointer.pages_flushed
    engine.simulate_crash()
    hierarchy.reset_accounting()
    report = RecoveryManager(engine.bm, engine.log).recover()
    recovery_ns = hierarchy.cost.makespan_ns(workers=1)
    return {
        "pages_flushed": float(pages_flushed),
        "flush_ssd_mb": flush_bytes / 1e6,
        "redo_applied": float(report.redo_applied),
        "recovery_ms": recovery_ns / 1e6,
        "nvm_pages_recovered": float(report.recovered_nvm_pages),
    }


def run(quick: bool = True, jobs: int = 1) -> ExperimentResult:
    del jobs  # crash/recover pairs mutate shared state; serial only
    operations = OPS_QUICK if quick else OPS_FULL
    result = ExperimentResult(
        "recovery", "Recovery Overhead: DRAM-SSD vs DRAM-NVM-SSD (§6.2 claim)"
    )
    result.metadata.update(workload="YCSB-WH", operations=operations,
                           tuples=NUM_TUPLES)
    metrics = {label: _one_config(label, operations) for label in CONFIGS}
    for metric in ("pages_flushed", "flush_ssd_mb", "redo_applied",
                   "recovery_ms", "nvm_pages_recovered"):
        series = result.new_series(metric)
        for label in CONFIGS:
            series.add(label, metrics[label][metric])
    two_tier = metrics["DRAM-SSD"]
    three_tier = metrics["DRAM-NVM-SSD"]
    result.note(
        f"checkpoint bytes to SSD: {two_tier['flush_ssd_mb']:.2f} MB "
        f"(DRAM-SSD) vs {three_tier['flush_ssd_mb']:.2f} MB (three-tier) — "
        "NVM absorbs the recovery protocol's flushing (§6.2)"
    )
    result.note(
        f"simulated recovery time: {two_tier['recovery_ms']:.3f} ms vs "
        f"{three_tier['recovery_ms']:.3f} ms"
    )
    return result
