"""Fig. 7 — Performance impact of bypassing NVM (§6.3).

Sweeps the NVM migration probabilities ``N_r = N_w = N`` over
{0, 0.01, 0.1, 1} with an eager DRAM policy (D = 1) on the §6.3
hierarchy.

Expected shape: lazy N (0.01-0.1) beats eager N = 1 (1.25x on YCSB-RO
in the paper); N = 0 collapses because it forfeits the NVM buffer's
capacity entirely, and the collapse is much deeper with 16 workers
(the SSD saturates).
"""

from __future__ import annotations

from ...core.policy import MigrationPolicy
from ...workloads.ycsb import MIXES
from ..reporting import ExperimentResult
from .common import (
    POLICY_DB_GB,
    POLICY_SHAPE,
    SWEEP_PROBS,
    build_bm,
    effort,
    run_tpcc,
    run_ycsb,
)

WORKLOADS = ("YCSB-RO", "YCSB-BA", "YCSB-WH", "TPC-C")


def run(quick: bool = True) -> ExperimentResult:
    eff = effort(quick)
    result = ExperimentResult(
        "fig7", "Performance Impact of Bypassing NVM (N sweep, D=1)"
    )
    result.metadata.update(
        dram_gb=POLICY_SHAPE.dram_gb, nvm_gb=POLICY_SHAPE.nvm_gb,
        db_gb=POLICY_DB_GB,
    )
    for workload in WORKLOADS:
        one = result.new_series(f"{workload}/1w")
        sixteen = result.new_series(f"{workload}/16w")
        for n in SWEEP_PROBS:
            policy = MigrationPolicy(d_r=1.0, d_w=1.0, n_r=n, n_w=n,
                                     name=f"N={n}")
            bm = build_bm(POLICY_SHAPE, policy)
            if workload == "TPC-C":
                res = run_tpcc(bm, POLICY_DB_GB, eff=eff)
            else:
                res = run_ycsb(bm, MIXES[workload], POLICY_DB_GB, eff=eff)
            one.add(n, res.throughput)
            sixteen.add(n, res.throughput_by_workers[16])
    for workload in WORKLOADS:
        one = result.series[f"{workload}/1w"]
        sixteen = result.series[f"{workload}/16w"]
        lazy = max(one.y_at(0.01), one.y_at(0.1))
        lazy16 = max(sixteen.y_at(0.01), sixteen.y_at(0.1))
        result.note(
            f"{workload}: lazy/eager={lazy / one.y_at(1.0):.2f}x (1w); "
            f"N=0 gap: {lazy / one.y_at(0.0):.2f}x (1w), "
            f"{lazy16 / sixteen.y_at(0.0):.2f}x (16w)"
        )
    return result
