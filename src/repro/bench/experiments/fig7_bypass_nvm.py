"""Fig. 7 — Performance impact of bypassing NVM (§6.3).

Sweeps the NVM migration probabilities ``N_r = N_w = N`` over
{0, 0.01, 0.1, 1} with an eager DRAM policy (D = 1) on the §6.3
hierarchy.

Expected shape: lazy N (0.01-0.1) beats eager N = 1 (1.25x on YCSB-RO
in the paper); N = 0 collapses because it forfeits the NVM buffer's
capacity entirely, and the collapse is much deeper with 16 workers
(the SSD saturates).
"""

from __future__ import annotations

from ...core.policy import MigrationPolicy
from ..reporting import ExperimentResult
from .common import (
    POLICY_DB_GB,
    POLICY_SHAPE,
    SWEEP_PROBS,
    Cell,
    CellBatch,
    effort,
)

WORKLOADS = ("YCSB-RO", "YCSB-BA", "YCSB-WH", "TPC-C")


def run(quick: bool = True, jobs: int = 1) -> ExperimentResult:
    eff = effort(quick)
    result = ExperimentResult(
        "fig7", "Performance Impact of Bypassing NVM (N sweep, D=1)"
    )
    result.metadata.update(
        dram_gb=POLICY_SHAPE.dram_gb, nvm_gb=POLICY_SHAPE.nvm_gb,
        db_gb=POLICY_DB_GB,
    )
    batch = CellBatch()
    for workload in WORKLOADS:
        for n in SWEEP_PROBS:
            policy = MigrationPolicy(d_r=1.0, d_w=1.0, n_r=n, n_w=n,
                                     name=f"N={n}")
            if workload == "TPC-C":
                cell = Cell.tpcc(f"{workload}/N={n}", POLICY_SHAPE, policy,
                                 POLICY_DB_GB, effort=eff)
            else:
                cell = Cell.ycsb(f"{workload}/N={n}", POLICY_SHAPE, policy,
                                 workload, POLICY_DB_GB, effort=eff)
            batch.add((workload, n), cell)
    runs = batch.run(jobs)
    for workload in WORKLOADS:
        one = result.new_series(f"{workload}/1w")
        sixteen = result.new_series(f"{workload}/16w")
        for n in SWEEP_PROBS:
            res = runs[(workload, n)]
            one.add(n, res.throughput)
            sixteen.add(n, res.throughput_by_workers[16])
    for workload in WORKLOADS:
        one = result.series[f"{workload}/1w"]
        sixteen = result.series[f"{workload}/16w"]
        lazy = max(one.y_at(0.01), one.y_at(0.1))
        lazy16 = max(sixteen.y_at(0.01), sixteen.y_at(0.1))
        result.note(
            f"{workload}: lazy/eager={lazy / one.y_at(1.0):.2f}x (1w); "
            f"N=0 gap: {lazy / one.y_at(0.0):.2f}x (1w), "
            f"{lazy16 / sixteen.y_at(0.0):.2f}x (16w)"
        )
    return result
