"""Fig. 6 — Performance impact of bypassing DRAM (§6.3).

Sweeps the DRAM migration probabilities ``D_r = D_w = D`` over
{0, 0.01, 0.1, 1} with an eager NVM policy (N = 1) on the §6.3
hierarchy (12.5 GB DRAM + 50 GB NVM, 100 GB database).

Expected shape: throughput peaks at the lazy D = 0.01 (58% over eager
on YCSB-RO in the paper); D = 0 (DRAM disabled) drops ~20% below the
peak; the eager D = 1 is the worst of the non-zero settings.
"""

from __future__ import annotations

from ...core.policy import MigrationPolicy
from ..reporting import ExperimentResult
from .common import (
    POLICY_DB_GB,
    POLICY_SHAPE,
    SWEEP_PROBS,
    Cell,
    CellBatch,
    effort,
)

WORKLOADS = ("YCSB-RO", "YCSB-BA", "YCSB-WH", "TPC-C")


def run(quick: bool = True, jobs: int = 1) -> ExperimentResult:
    eff = effort(quick)
    result = ExperimentResult(
        "fig6", "Performance Impact of Bypassing DRAM (D sweep, N=1)"
    )
    result.metadata.update(
        dram_gb=POLICY_SHAPE.dram_gb, nvm_gb=POLICY_SHAPE.nvm_gb,
        db_gb=POLICY_DB_GB,
    )
    batch = CellBatch()
    for workload in WORKLOADS:
        for d in SWEEP_PROBS:
            policy = MigrationPolicy(d_r=d, d_w=d, n_r=1.0, n_w=1.0,
                                     name=f"D={d}")
            if workload == "TPC-C":
                cell = Cell.tpcc(f"{workload}/D={d}", POLICY_SHAPE, policy,
                                 POLICY_DB_GB, effort=eff)
            else:
                cell = Cell.ycsb(f"{workload}/D={d}", POLICY_SHAPE, policy,
                                 workload, POLICY_DB_GB, effort=eff)
            batch.add((workload, d), cell)
    runs = batch.run(jobs)
    for workload in WORKLOADS:
        one = result.new_series(f"{workload}/1w")
        sixteen = result.new_series(f"{workload}/16w")
        for d in SWEEP_PROBS:
            res = runs[(workload, d)]
            one.add(d, res.throughput)
            sixteen.add(d, res.throughput_by_workers[16])
    for workload in WORKLOADS:
        series = result.series[f"{workload}/1w"]
        peak = max(series.ys)
        result.note(
            f"{workload}: peak at D={series.peak_x}, "
            f"peak/eager={peak / series.y_at(1.0):.2f}x, "
            f"D=0 at {series.y_at(0.0) / peak:.2f} of peak"
        )
    return result
