"""Fig. 11 — Optimal granularity for loading data on NVM (§6.5).

Runs HyMem (eager DRAM migration, fine-grained loading enabled) on
YCSB-RO with the loading unit swept over 64/128/256/512 B on the §6.5
hierarchy (8 GB DRAM + 32 GB NVM, ~20 GB database).

Expected shape: throughput peaks at the 256 B Optane media granularity.
Loading at 64 B amplifies every transfer to a 256 B media block (4x the
traffic); loading at 512 B moves data the access never touches.
"""

from __future__ import annotations

from ...core.buffer_manager import BufferManagerConfig
from ...core.policy import HYMEM_POLICY
from ...pages.granularity import FIG11_GRANULARITIES, LoadingUnit
from ..reporting import ExperimentResult
from .common import HYMEM_DB_GB, HYMEM_SHAPE, Cell, CellBatch, effort

WORKERS = 16


def run(quick: bool = True, jobs: int = 1) -> ExperimentResult:
    eff = effort(quick)
    result = ExperimentResult(
        "fig11", "Optimal Granularity for Loading Data on NVM (YCSB-RO)"
    )
    result.metadata.update(
        dram_gb=HYMEM_SHAPE.dram_gb, nvm_gb=HYMEM_SHAPE.nvm_gb,
        db_gb=HYMEM_DB_GB, workers=WORKERS,
    )
    batch = CellBatch()
    for granularity in FIG11_GRANULARITIES:
        # The HyMem configuration of make_hymem, fine-grained without
        # mini pages, with the loading unit under test.
        config = BufferManagerConfig(
            fine_grained=True, mini_pages=False,
            loading_unit=LoadingUnit(granularity),
        )
        batch.add(
            granularity,
            Cell.ycsb(f"HyMem/{granularity}B", HYMEM_SHAPE, HYMEM_POLICY,
                      "YCSB-RO", HYMEM_DB_GB, effort=eff, bm_config=config,
                      workers=WORKERS, extra_worker_counts=()),
        )
    runs = batch.run(jobs)
    series = result.new_series("HyMem")
    for granularity in FIG11_GRANULARITIES:
        series.add(granularity, runs[granularity].throughput)
    result.note(
        f"throughput peaks at {series.peak_x} B "
        f"(the Optane media access granularity is 256 B)"
    )
    result.note(
        f"64 B vs 256 B: {series.y_at(256) / series.y_at(64):.2f}x "
        "(the paper reports ~1.1x)"
    )
    return result
