"""Fig. 11 — Optimal granularity for loading data on NVM (§6.5).

Runs HyMem (eager DRAM migration, fine-grained loading enabled) on
YCSB-RO with the loading unit swept over 64/128/256/512 B on the §6.5
hierarchy (8 GB DRAM + 32 GB NVM, ~20 GB database).

Expected shape: throughput peaks at the 256 B Optane media granularity.
Loading at 64 B amplifies every transfer to a 256 B media block (4x the
traffic); loading at 512 B moves data the access never touches.
"""

from __future__ import annotations

from ...core.hymem import make_hymem
from ...hardware.cost_model import StorageHierarchy
from ...pages.granularity import FIG11_GRANULARITIES, LoadingUnit
from ...workloads.ycsb import YCSB_RO
from ..reporting import ExperimentResult
from .common import HYMEM_DB_GB, HYMEM_SHAPE, effort, run_ycsb

WORKERS = 16


def run(quick: bool = True) -> ExperimentResult:
    eff = effort(quick)
    result = ExperimentResult(
        "fig11", "Optimal Granularity for Loading Data on NVM (YCSB-RO)"
    )
    result.metadata.update(
        dram_gb=HYMEM_SHAPE.dram_gb, nvm_gb=HYMEM_SHAPE.nvm_gb,
        db_gb=HYMEM_DB_GB, workers=WORKERS,
    )
    series = result.new_series("HyMem")
    for granularity in FIG11_GRANULARITIES:
        hierarchy = StorageHierarchy(HYMEM_SHAPE)
        bm = make_hymem(
            hierarchy,
            fine_grained=True,
            mini_pages=False,
            loading_unit=LoadingUnit(granularity),
        )
        res = run_ycsb(bm, YCSB_RO, HYMEM_DB_GB, eff=eff, workers=WORKERS,
                       extra_worker_counts=())
        series.add(granularity, res.throughput)
    result.note(
        f"throughput peaks at {series.peak_x} B "
        f"(the Optane media access granularity is 256 B)"
    )
    result.note(
        f"64 B vs 256 B: {series.y_at(256) / series.y_at(64):.2f}x "
        "(the paper reports ~1.1x)"
    )
    return result
