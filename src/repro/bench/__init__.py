"""Benchmark harness and per-figure experiment reproductions."""

from .event_trace import EventTraceRecorder
from .executor import (
    RunSession,
    metrics_collected,
    metrics_collection,
    run_session,
    shutdown_pool,
    warm_pool,
)
from .harness import RunConfig, RunResult, WorkloadRunner
from .reporting import ExperimentResult, Series

__all__ = [
    "EventTraceRecorder",
    "ExperimentResult",
    "RunConfig",
    "RunResult",
    "RunSession",
    "Series",
    "WorkloadRunner",
    "metrics_collected",
    "metrics_collection",
    "run_session",
    "shutdown_pool",
    "warm_pool",
]
