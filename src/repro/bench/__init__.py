"""Benchmark harness and per-figure experiment reproductions."""

from .harness import RunConfig, RunResult, WorkloadRunner
from .reporting import ExperimentResult, Series

__all__ = [
    "ExperimentResult",
    "RunConfig",
    "RunResult",
    "Series",
    "WorkloadRunner",
]
