"""Benchmark harness and per-figure experiment reproductions."""

from .event_trace import EventTraceRecorder
from .executor import metrics_collected, metrics_collection
from .harness import RunConfig, RunResult, WorkloadRunner
from .reporting import ExperimentResult, Series

__all__ = [
    "EventTraceRecorder",
    "ExperimentResult",
    "RunConfig",
    "RunResult",
    "Series",
    "WorkloadRunner",
    "metrics_collected",
    "metrics_collection",
]
