"""Benchmark harness and per-figure experiment reproductions."""

from .event_trace import EventTraceRecorder
from .harness import RunConfig, RunResult, WorkloadRunner
from .reporting import ExperimentResult, Series

__all__ = [
    "EventTraceRecorder",
    "ExperimentResult",
    "RunConfig",
    "RunResult",
    "Series",
    "WorkloadRunner",
]
