"""Parallel experiment executor: declarative cells over a persistent pool.

Every figure in the paper is a grid of independent measurements — one
buffer manager, one workload, one policy/shape/knob combination per
point.  This module turns each grid point into a picklable :class:`Cell`
spec and runs batches of them with :func:`run_cells`, either in-process
(``jobs=1``) or on a **session-scoped persistent worker pool**: one
:class:`concurrent.futures.ProcessPoolExecutor` created lazily per
process and reused by every :func:`run_cells` / :func:`run_tasks` call,
so pool startup and worker warm-up are paid once per process instead of
once per figure.

Design rules:

* a :class:`Cell` carries *specs*, never live objects: the worker builds
  its own hierarchy, buffer manager, and workload from scratch, so a
  parallel run draws exactly the same RNG streams as a serial run and
  the per-figure JSON output is byte-identical for any ``jobs`` value;
* results come back in submission order regardless of completion order;
* work is submitted as **contiguous chunks** sized from each cell's
  :class:`Effort` (longest-expected-first), which amortises pickling
  and IPC over many small tasks while keeping load balanced;
* execution scopes (:func:`metrics_collection`, :func:`batch_execution`,
  :func:`fault_plan_injection`, :func:`tenant_tagging`) travel as an
  explicit per-submission
  :class:`ExecContext` value captured at submit time and installed
  around the work inside the worker — a persistent pool outlives any
  scope, so nothing may rely on workers inheriting parent state;
* a failing cell raises :class:`CellExecutionError` naming the cell's
  full spec, and never hangs the pool (remaining chunks are cancelled);
* when worker processes cannot be spawned at all (restricted sandboxes,
  missing ``os.fork``) or die wholesale mid-batch, the batch
  transparently degrades to serial in-process execution with identical
  results.

This module is imported by ``bench.experiments.common`` and must never
import from ``bench.experiments`` (the package init pulls in every
figure module).
"""

from __future__ import annotations

import atexit
import contextlib
import contextvars
import multiprocessing
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace

from ..core.buffer_manager import BufferManager, BufferManagerConfig
from ..core.policy import MigrationPolicy
from ..core.tenancy import QuotaMode, TenancyConfig
from ..hardware.cost_model import StorageHierarchy
from ..hardware.pricing import HierarchyShape
from ..hardware.specs import DEFAULT_SCALE, SimulationScale
from ..workloads.tenancy import MultiTenantWorkload, TenantSpec
from ..workloads.tpcc import TpccWorkload
from ..workloads.ycsb import MIXES, YcsbWorkload
from .harness import RunConfig, RunResult, WorkloadRunner

#: 16 KB pages of 1 KB tuples — the YCSB layout every figure uses.
TUPLES_PER_PAGE = 16


@dataclass(frozen=True)
class Effort:
    """Operation-count envelope for one experiment run."""

    warmup_ops: int
    measure_ops: int


QUICK = Effort(warmup_ops=8_000, measure_ops=15_000)
FULL = Effort(warmup_ops=30_000, measure_ops=60_000)


def effort(quick: bool) -> Effort:
    return QUICK if quick else FULL


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative workload description, resolved inside the worker.

    The YCSB mix is carried by *name* (a :data:`repro.workloads.ycsb.MIXES`
    key) so the spec stays a small value object.
    """

    kind: str  # "ycsb" | "tpcc"
    db_gb: float
    mix: str | None = None
    skew: float = 0.3
    seed: int = 3

    def __post_init__(self) -> None:
        if self.kind not in ("ycsb", "tpcc"):
            raise ValueError(f"unknown workload kind {self.kind!r}")
        if self.kind == "ycsb":
            if self.mix not in MIXES:
                raise ValueError(
                    f"unknown YCSB mix {self.mix!r}; expected one of "
                    f"{sorted(MIXES)}"
                )
        elif self.mix is not None:
            raise ValueError("TPC-C cells take no mix")


@dataclass(frozen=True)
class Cell:
    """One grid point: everything needed to reproduce one measurement.

    All fields are plain values or frozen dataclasses, so cells pickle
    cleanly into worker processes.  The defaults mirror the historical
    ``common.build_bm`` + ``common.run_ycsb``/``run_tpcc`` call chain
    exactly — that equivalence is what keeps parallel figure output
    byte-identical to serial output.
    """

    label: str
    shape: HierarchyShape
    policy: MigrationPolicy
    workload: WorkloadSpec
    effort: Effort = QUICK
    scale: SimulationScale = DEFAULT_SCALE
    bm_config: BufferManagerConfig | None = None
    memory_mode: bool = False
    #: BM RNG seed, used only when ``bm_config`` is None.
    seed: int = 42
    workers: int = 1
    extra_worker_counts: tuple[int, ...] = (16,)
    with_wal: bool = True
    trace_events: bool = False
    #: Attach a MetricsHub over this cell's measurement window.  Also
    #: forced on for every cell while :func:`metrics_collection` is
    #: active (the CLI's ``--metrics-out`` path).
    collect_metrics: bool = False
    #: Operations per batch through the columnar batch path (1 = the
    #: legacy per-op loop).  Overridden for every cell while
    #: :func:`batch_execution` is active.
    batch_size: int = 1
    #: Tenant population for a multi-tenant cell.  Non-empty routes the
    #: cell through :meth:`WorkloadRunner.measure_tenants` over an
    #: interleaved :class:`~repro.workloads.tenancy.MultiTenantWorkload`
    #: (``workload.seed`` seeds the interleaver); empty keeps the
    #: single-stream path.  TenantSpec is frozen, so cells stay
    #: picklable.
    tenants: tuple[TenantSpec, ...] = ()
    #: Quota mode for multi-tenant cells: "none", "hard", or "soft".
    quota_mode: str = "none"
    #: Per-tenant buffer-share fractions (empty = equal shares).
    shares: tuple[float, ...] = ()
    #: Project tenant-labelled metrics and attach a per-tenant breakdown
    #: to the result.  Also forced on for every cell while
    #: :func:`tenant_tagging` is active.
    track_tenants: bool = False
    #: Page fraction for decision-span sampling (0 = off); the ambient
    #: :func:`decision_tracing` scope overrides it for every cell.
    trace_decisions: float = 0.0

    def __post_init__(self) -> None:
        if self.quota_mode not in ("none", "hard", "soft"):
            raise ValueError(
                f"unknown quota mode {self.quota_mode!r}; "
                "expected 'none', 'hard', or 'soft'"
            )
        if self.shares and len(self.shares) != len(self.tenants):
            raise ValueError("shares must have one entry per tenant")

    # ------------------------------------------------------------------
    @classmethod
    def ycsb(cls, label: str, shape: HierarchyShape, policy: MigrationPolicy,
             mix: str, db_gb: float, *, skew: float = 0.3,
             workload_seed: int = 3, **kwargs) -> "Cell":
        """A YCSB grid point (mirrors ``common.run_ycsb`` defaults)."""
        spec = WorkloadSpec(kind="ycsb", db_gb=db_gb, mix=mix, skew=skew,
                            seed=workload_seed)
        return cls(label=label, shape=shape, policy=policy, workload=spec,
                   **kwargs)

    @classmethod
    def tpcc(cls, label: str, shape: HierarchyShape, policy: MigrationPolicy,
             db_gb: float, *, workload_seed: int = 3, **kwargs) -> "Cell":
        """A TPC-C grid point (mirrors ``common.run_tpcc`` defaults)."""
        spec = WorkloadSpec(kind="tpcc", db_gb=db_gb, seed=workload_seed)
        return cls(label=label, shape=shape, policy=policy, workload=spec,
                   **kwargs)

    @classmethod
    def multi_tenant(cls, label: str, shape: HierarchyShape,
                     policy: MigrationPolicy, tenants, *,
                     quota_mode: str = "none",
                     shares: tuple[float, ...] = (),
                     interleave_seed: int = 3, **kwargs) -> "Cell":
        """A multi-tenant grid point over an interleaved tenant stream.

        ``tenants`` is a sequence of :class:`TenantSpec`;
        ``interleave_seed`` seeds the weighted stream interleaver (it
        rides in ``workload.seed``).  The ``workload`` field carries the
        lead tenant's profile purely for display — execution resolves
        the full tenant population.  Per-tenant tracking defaults on so
        results carry breakdowns.
        """
        tenants = tuple(tenants)
        if not tenants:
            raise ValueError("multi-tenant cells need at least one TenantSpec")
        lead = tenants[0]
        spec = WorkloadSpec(
            kind=lead.kind, db_gb=lead.db_gigabytes,
            mix=lead.mix if lead.kind == "ycsb" else None,
            skew=lead.skew, seed=interleave_seed,
        )
        kwargs.setdefault("track_tenants", True)
        return cls(label=label, shape=shape, policy=policy, workload=spec,
                   tenants=tenants, quota_mode=quota_mode,
                   shares=tuple(shares), **kwargs)

    def describe(self) -> str:
        """One-line spec rendering for error messages and logs."""
        wl = self.workload
        if self.tenants:
            names = "+".join(spec.name for spec in self.tenants)
            workload = f"tenants[{names}] quota={self.quota_mode}"
        elif wl.kind == "ycsb":
            workload = f"{wl.mix} skew={wl.skew}"
        else:
            workload = "TPC-C"
        return (
            f"Cell({self.label!r}: shape={self.shape.label}, "
            f"policy={self.policy.name or self.policy}, {workload}, "
            f"db={wl.db_gb:g}GB, effort={self.effort.warmup_ops}+"
            f"{self.effort.measure_ops}, workers={self.workers}, "
            f"seed={self.seed}/{wl.seed})"
        )


class CellExecutionError(RuntimeError):
    """A cell's measurement raised; carries the failing cell's spec."""

    def __init__(self, cell: Cell, cause: BaseException) -> None:
        self.cell = cell
        self.cause = cause
        super().__init__(
            f"experiment cell failed: {cause!r}\n  spec: {cell.describe()}"
        )


# ----------------------------------------------------------------------
# Execution scopes and their transport: ExecContext
# ----------------------------------------------------------------------
# The session scopes (metrics collection, batch execution, fault
# injection, tenant tagging) used to travel into pool workers as
# environment variables,
# relying on workers inheriting the parent's environment at fork time.
# A *persistent* pool breaks that scheme: workers fork once, so a scope
# entered after the pool exists would silently not apply inside it.
# Instead the ambient scope state lives in context variables (also
# making scopes thread-safe for the CLI's suite session, where several
# figure drivers run concurrently), and every submission captures it
# into an explicit ExecContext value that the worker installs around
# the chunk it executes.

_metrics_on_var: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "repro_metrics_on", default=False)
_metrics_sink_var: contextvars.ContextVar[list | None] = contextvars.ContextVar(
    "repro_metrics_sink", default=None)
_batch_size_var: contextvars.ContextVar[int | None] = contextvars.ContextVar(
    "repro_batch_size", default=None)
_fault_plan_var: contextvars.ContextVar[bytes | None] = contextvars.ContextVar(
    "repro_fault_plan", default=None)
_tenancy_on_var: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "repro_tenancy_on", default=False)
_telemetry_var: contextvars.ContextVar[object | None] = contextvars.ContextVar(
    "repro_telemetry", default=None)
_decision_fraction_var: contextvars.ContextVar[float | None] = \
    contextvars.ContextVar("repro_decision_fraction", default=None)


@dataclass(frozen=True)
class ExecContext:
    """Ambient execution scopes, captured at submit time.

    Plain picklable values: the fault plan rides pre-pickled (it is
    pickled once per scope entry, not once per task).  ``install()``
    makes the context ambient — inside a worker, around a whole chunk.
    """

    collect_metrics: bool = False
    batch_size: int | None = None
    fault_plan_payload: bytes | None = None
    tenant_tagging: bool = False
    #: Ambient :class:`~repro.bench.telemetry.TelemetryChannel`, or None.
    #: Manager-queue-backed channels pickle (the proxy crosses process
    #: boundaries); the in-process fallback degrades to a no-op emitter
    #: inside workers.  Compared by identity in ``is_default`` — the
    #: default context carries None.
    telemetry: object | None = None
    #: Page fraction for decision-span sampling, or None (tracing off).
    decision_fraction: float | None = None

    @property
    def is_default(self) -> bool:
        return self == _DEFAULT_CONTEXT

    @contextlib.contextmanager
    def install(self):
        tokens = (
            _metrics_on_var.set(self.collect_metrics),
            _batch_size_var.set(self.batch_size),
            _fault_plan_var.set(self.fault_plan_payload),
            _tenancy_on_var.set(self.tenant_tagging),
            _telemetry_var.set(self.telemetry),
            _decision_fraction_var.set(self.decision_fraction),
        )
        try:
            yield self
        finally:
            _decision_fraction_var.reset(tokens[5])
            _telemetry_var.reset(tokens[4])
            _tenancy_on_var.reset(tokens[3])
            _fault_plan_var.reset(tokens[2])
            _batch_size_var.reset(tokens[1])
            _metrics_on_var.reset(tokens[0])


_DEFAULT_CONTEXT = ExecContext()


def current_context() -> ExecContext:
    """The ambient execution scopes of the calling thread."""
    return ExecContext(
        collect_metrics=_metrics_on_var.get(),
        batch_size=_batch_size_var.get(),
        fault_plan_payload=_fault_plan_var.get(),
        tenant_tagging=_tenancy_on_var.get(),
        telemetry=_telemetry_var.get(),
        decision_fraction=_decision_fraction_var.get(),
    )


def metrics_collected() -> bool:
    """Whether session-wide metrics collection is currently on."""
    return _metrics_on_var.get()


@contextlib.contextmanager
def metrics_collection():
    """Collect a MetricsHub snapshot from every cell run in this scope.

    Yields the sink list; after the scope, it holds one
    ``(cell label, RunResult)`` pair per executed cell in submission
    order regardless of the ``jobs`` value, so merging the snapshots in
    list order gives byte-identical exports at any parallelism.
    """
    sink: list[tuple[str, RunResult]] = []
    on_token = _metrics_on_var.set(True)
    sink_token = _metrics_sink_var.set(sink)
    try:
        yield sink
    finally:
        _metrics_sink_var.reset(sink_token)
        _metrics_on_var.reset(on_token)


def _record_results(cells, results) -> None:
    """Append a finished batch to the metrics sink, in submission order."""
    sink = _metrics_sink_var.get()
    if sink is None:
        return
    for cell, result in zip(cells, results):
        if result.metrics is not None:
            sink.append((cell.label, result))


def active_batch_size() -> int | None:
    """The scoped batch-size override, or None."""
    return _batch_size_var.get()


@contextlib.contextmanager
def batch_execution(batch_size: int):
    """Run every cell in this scope through the batch path.

    The batch path is byte-identical to the per-op loop by construction,
    so wrapping a figure run in ``batch_execution(1024)`` changes only
    wall-clock time — ``check_golden_figures.py --with-batching`` uses
    exactly this to enforce that contract.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    token = _batch_size_var.set(batch_size)
    try:
        yield batch_size
    finally:
        _batch_size_var.reset(token)


def tenant_tagging_active() -> bool:
    """Whether session-wide tenant tagging is currently on."""
    return _tenancy_on_var.get()


@contextlib.contextmanager
def tenant_tagging():
    """Run every cell in this scope with tenant plumbing enabled.

    Single-stream cells get ``TenancyConfig.single()`` — every op is
    tagged tenant 0, per-tenant admission/metrics machinery is live,
    and behaviour is byte-identical to the untagged path by
    construction.  ``check_golden_figures.py --with-tenancy`` wraps the
    figure suite in exactly this scope to enforce that contract.
    """
    token = _tenancy_on_var.set(True)
    try:
        yield
    finally:
        _tenancy_on_var.reset(token)


def active_fault_plan():
    """The FaultPlan installed by the ambient scope, or None."""
    payload = _fault_plan_var.get()
    if payload is None:
        return None
    return pickle.loads(payload)


@contextlib.contextmanager
def fault_plan_injection(plan):
    """Install ``plan`` under every cell run in this scope.

    Each :func:`run_cell` wraps its hierarchy's devices with
    :func:`~repro.faults.injector.inject_faults` before building the
    buffer manager.  A no-op plan yields pure-delegation wrappers — the
    golden-figure gate uses exactly this to prove figure JSON stays
    byte-identical with the injection layer installed.
    """
    token = _fault_plan_var.set(pickle.dumps(plan))
    try:
        yield plan
    finally:
        _fault_plan_var.reset(token)


def active_telemetry():
    """The ambient TelemetryChannel, or None."""
    return _telemetry_var.get()


@contextlib.contextmanager
def telemetry_channel(channel):
    """Stream live progress from every cell run in this scope.

    ``channel`` is a :class:`~repro.bench.telemetry.TelemetryChannel`;
    each :func:`run_cell` emits cell start/progress/end events through
    it, and the chaos matrix emits per-case events.  The channel is
    strictly out-of-band: it carries wall-clock progress only, never
    touches result payloads, and a dead transport degrades to silent
    no-ops — so figure JSON stays byte-identical with the channel
    attached at any ``--jobs`` (``check_golden_figures.py
    --with-telemetry`` enforces exactly this).
    """
    token = _telemetry_var.set(channel)
    try:
        yield channel
    finally:
        _telemetry_var.reset(token)


def active_decision_fraction() -> float | None:
    """The ambient decision-span sampling fraction, or None."""
    return _decision_fraction_var.get()


@contextlib.contextmanager
def decision_tracing(fraction: float = 1.0):
    """Attach a DecisionRecorder to every cell run in this scope.

    Each cell's measurement window gets a
    :class:`~repro.obs.decisions.DecisionRecorder` recording every
    migration/admission/eviction decision (spans sampled at
    ``fraction`` by deterministic page-id hash); results carry the
    trace in ``RunResult.decision_trace``.  The recorder is read-only
    on the decision path by contract, so tracing cannot perturb RNG
    draws or admission-queue state — figure output stays byte-identical.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    token = _decision_fraction_var.set(fraction)
    try:
        yield fraction
    finally:
        _decision_fraction_var.reset(token)


# ----------------------------------------------------------------------
# The persistent worker pool
# ----------------------------------------------------------------------
#: Chunks submitted per worker per batch — enough granularity for load
#: balancing without drowning the pool queue in single-item tasks.
CHUNKS_PER_WORKER = 4

_pool_lock = threading.Lock()
_pool: ProcessPoolExecutor | None = None
_pool_workers = 0
_pool_start_method: str | None = None
_pool_generation = 0
#: Batches currently collecting results from the pool (guarded by
#: ``_pool_lock``); a pool with outstanding batches is never replaced.
_pool_busy = 0


def _warm_worker() -> None:
    """Pool initializer: pre-import the heavy modules workers will need.

    Under ``fork`` the parent's imports are inherited and this is free;
    under ``forkserver``/``spawn`` it front-loads the import cost into
    pool startup instead of the first measured cell.
    """
    from .. import engine, faults  # noqa: F401
    from ..core import batch_path, buffer_manager  # noqa: F401
    from ..faults import injector  # noqa: F401
    from . import harness  # noqa: F401


def _pool_context():
    """Pick the cheapest available start method: fork, then forkserver.

    ``fork`` gives pre-warmed workers for free (they inherit the
    parent's imported modules); ``forkserver`` isolates the fork from
    parent threads at the cost of re-importing (which the initializer
    front-loads); the platform default is the last resort.
    """
    methods = multiprocessing.get_all_start_methods()
    for method in ("fork", "forkserver"):
        if method in methods:
            return multiprocessing.get_context(method)
    return multiprocessing.get_context()


def _ensure_pool(jobs: int) -> ProcessPoolExecutor | None:
    """The shared pool with capacity for ``jobs``, or None if unavailable.

    The pool is created lazily on first parallel batch and reused by
    every later batch in the process.  A request for more workers than
    the pool has grows it (replace-when-idle: an in-flight batch keeps
    the current pool; growth happens on the next idle submission).
    Pools never shrink.
    """
    global _pool, _pool_workers, _pool_start_method, _pool_generation
    with _pool_lock:
        if _pool is not None:
            if _pool_workers >= jobs or _pool_busy > 0:
                return _pool
            _pool.shutdown(wait=True, cancel_futures=True)
            _pool = None
        try:
            context = _pool_context()
            pool = ProcessPoolExecutor(
                max_workers=max(jobs, _pool_workers),
                mp_context=context,
                initializer=_warm_worker,
            )
        except (OSError, ValueError, NotImplementedError):
            return None
        _pool = pool
        _pool_workers = max(jobs, _pool_workers)
        _pool_start_method = context.get_start_method()
        _pool_generation += 1
        return _pool


def _discard_pool() -> None:
    """Drop a broken pool so the next batch builds a fresh one."""
    global _pool
    with _pool_lock:
        if _pool is not None:
            _pool.shutdown(wait=False, cancel_futures=True)
            _pool = None


def shutdown_pool() -> None:
    """Tear down the persistent pool (tests / interpreter exit)."""
    global _pool, _pool_workers, _pool_start_method
    with _pool_lock:
        if _pool is not None:
            _pool.shutdown(wait=True, cancel_futures=True)
            _pool = None
        _pool_workers = 0
        _pool_start_method = None


atexit.register(shutdown_pool)


def pool_info() -> dict | None:
    """Diagnostics for the live pool (None before first parallel batch)."""
    with _pool_lock:
        if _pool is None:
            return None
        return {
            "workers": _pool_workers,
            "start_method": _pool_start_method,
            "generation": _pool_generation,
        }


def _ping() -> int:
    import os

    return os.getpid()


def warm_pool(jobs: int) -> bool:
    """Create the persistent pool and force all its workers to start.

    Submitting ``jobs`` no-op tasks makes the executor spawn its full
    worker complement up front, so the first measured batch runs on a
    warm pool.  Returns False when workers cannot be spawned at all.
    """
    if jobs <= 1:
        return False
    pool = _ensure_pool(jobs)
    if pool is None:
        return False
    try:
        futures = [pool.submit(_ping) for _ in range(jobs)]
        for future in futures:
            future.result()
    except BrokenProcessPool:
        _discard_pool()
        return False
    return True


# ----------------------------------------------------------------------
# The shared submission engine
# ----------------------------------------------------------------------
class _ItemFailure(Exception):
    """Internal: item ``index`` raised ``cause`` (first in order)."""

    def __init__(self, index: int, cause: BaseException) -> None:
        self.index = index
        self.cause = cause
        super().__init__(f"item {index} failed: {cause!r}")


class _ChunkSkipped(Exception):
    """Placeholder outcome for items after a failure in their chunk."""


def _as_picklable(exc: BaseException) -> BaseException:
    """Exceptions travel back as values; substitute when they can't."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _exec_chunk(runner, items: tuple, ctx: ExecContext) -> list:
    """Worker-side entry: run one contiguous chunk under ``ctx``.

    Returns one ``(ok, payload)`` pair per item.  After the first
    failure the rest of the chunk is skipped — the parent raises at the
    first failing index, so later outcomes would be discarded anyway.
    """
    out: list[tuple[bool, object]] = []
    with ctx.install():
        for position, item in enumerate(items):
            try:
                out.append((True, runner(item)))
            except Exception as exc:
                out.append((False, _as_picklable(exc)))
                out.extend(
                    (False, _ChunkSkipped())
                    for _ in range(len(items) - position - 1)
                )
                break
    return out


def _plan_chunks(weights: list[float], jobs: int) -> list[tuple[int, int]]:
    """Cut ``len(weights)`` items into contiguous ``[start, stop)`` spans.

    Few items (up to ``jobs * CHUNKS_PER_WORKER``) stay singleton spans;
    beyond that, spans are cut greedily so each carries roughly
    ``total_weight / (jobs * CHUNKS_PER_WORKER)`` expected work.  The
    returned list is in **submission order**: heaviest span first, so
    long-running work starts while lighter spans queue behind it and no
    straggler begins at the tail of the batch.
    """
    n = len(weights)
    max_chunks = max(1, jobs) * CHUNKS_PER_WORKER
    if n <= max_chunks:
        spans = [(i, i + 1) for i in range(n)]
    else:
        target = sum(weights) / max_chunks
        spans = []
        start = 0
        acc = 0.0
        for i, weight in enumerate(weights):
            acc += weight
            if acc >= target:
                spans.append((start, i + 1))
                start = i + 1
                acc = 0.0
        if start < n:
            spans.append((start, n))
    spans.sort(key=lambda span: -sum(weights[span[0]:span[1]]))
    return spans


def _execute_serial(items: list, runner) -> list:
    results = []
    for index, item in enumerate(items):
        try:
            results.append(runner(item))
        except Exception as exc:
            raise _ItemFailure(index, exc) from exc
    return results


def _note_session(**counts) -> None:
    session = _session
    if session is not None:
        session._note(**counts)


def _execute(items: list, runner, jobs: int, weigh) -> list:
    """Run ``runner`` over ``items``; results in submission order.

    The one submission engine behind :func:`run_cells` and
    :func:`run_tasks`: serial in-process for ``jobs<=1`` (or a single
    item), otherwise chunked over the persistent pool with the ambient
    :class:`ExecContext` attached to every chunk.  Pool-level failures
    (cannot spawn, workers died wholesale) degrade to a serial rerun —
    identical output, because items are self-contained and
    deterministic.  The first failing item (in submission order) raises
    :class:`_ItemFailure`; callers translate it.
    """
    n = len(items)
    if jobs <= 1 or n <= 1:
        _note_session(items=n, serial=1)
        return _execute_serial(items, runner)
    pool = _ensure_pool(jobs)
    if pool is None:
        _note_session(items=n, fallbacks=1)
        return _execute_serial(items, runner)
    ctx = current_context()
    spans = _plan_chunks([weigh(item) for item in items], jobs)

    global _pool_busy
    with _pool_lock:
        _pool_busy += 1
    futures: list[tuple[int, int, object]] = []
    try:
        try:
            for start, stop in spans:
                futures.append((start, stop, pool.submit(
                    _exec_chunk, runner, tuple(items[start:stop]), ctx)))
        except (BrokenProcessPool, RuntimeError):
            # RuntimeError: another thread observed the break first and
            # the executor refuses new futures mid-shutdown.
            for _, _, future in futures:
                future.cancel()
            _discard_pool()
            _note_session(items=n, fallbacks=1)
            return _execute_serial(items, runner)

        outcomes: list = [None] * n
        failed_at: int | None = None
        # Collect in index order (submission order was only for the
        # pool's scheduling): the first failing *index* must win
        # deterministically, exactly as a serial run would fail.
        for start, stop, future in sorted(futures, key=lambda f: f[0]):
            if failed_at is not None:
                future.cancel()
                continue
            try:
                outcomes[start:stop] = future.result()
            except BrokenProcessPool:
                for _, _, other in futures:
                    other.cancel()
                _discard_pool()
                _note_session(items=n, fallbacks=1)
                return _execute_serial(items, runner)
            except Exception as exc:
                # A chunk-level failure outside item execution (e.g. an
                # unpicklable return): attribute it to the chunk's head.
                outcomes[start] = (False, exc)
                failed_at = start
                continue
            for index in range(start, stop):
                ok, _ = outcomes[index]
                if not ok:
                    failed_at = index
                    break
    finally:
        with _pool_lock:
            _pool_busy -= 1

    _note_session(items=n, batches=1, chunks=len(spans))
    if failed_at is not None:
        _, cause = outcomes[failed_at]
        raise _ItemFailure(failed_at, cause) from cause
    return [payload for _, payload in outcomes]


# ----------------------------------------------------------------------
# The suite-wide run session
# ----------------------------------------------------------------------
@dataclass
class RunSession:
    """One warmed pool shared by everything run inside the scope.

    ``repro-experiments --all --jobs N`` (and the chaos matrix CLI)
    open one session for the whole suite: the pool starts and warms
    once, then every figure's cells and every crash case flow through
    it as chunked submissions.  The session also keeps simple counters
    so the CLI can report what the pool actually did.
    """

    jobs: int
    warmed: bool = False
    items: int = 0
    batches: int = 0
    chunks: int = 0
    serial: int = 0
    fallbacks: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def _note(self, items: int = 0, batches: int = 0, chunks: int = 0,
              serial: int = 0, fallbacks: int = 0) -> None:
        with self._lock:
            self.items += items
            self.batches += batches
            self.chunks += chunks
            self.serial += serial
            self.fallbacks += fallbacks

    def describe(self) -> str:
        info = pool_info()
        pool = (f"{info['workers']} workers ({info['start_method']})"
                if info else "no pool (serial)")
        return (f"session: {pool}, {self.items} cells/tasks in "
                f"{self.batches} pooled batches ({self.chunks} chunks, "
                f"{self.serial} serial batches, {self.fallbacks} fallbacks)")


_session: RunSession | None = None


@contextlib.contextmanager
def run_session(jobs: int):
    """Open a suite-wide session: warm the shared pool once, up front.

    Purely an optimisation scope — execution semantics (ordering,
    determinism, fallback) are identical inside and outside a session,
    and the pool it warms persists after the scope exits.
    """
    global _session
    session = RunSession(jobs=jobs)
    session.warmed = warm_pool(jobs)
    previous = _session
    _session = session
    try:
        yield session
    finally:
        _session = previous


# ----------------------------------------------------------------------
# Execution entry points
# ----------------------------------------------------------------------
def run_cell(cell: Cell) -> RunResult:
    """Build and measure one cell from scratch (runs inside workers too).

    Scope state (metrics / batch size / fault plan) is read from the
    ambient context — in a worker, that is the :class:`ExecContext`
    the chunk arrived with.
    """
    hierarchy = StorageHierarchy(cell.shape, cell.scale,
                                 memory_mode=cell.memory_mode)
    plan = active_fault_plan()
    if plan is not None:
        # Devices must be wrapped before the BM captures references.
        from ..faults.injector import inject_faults

        inject_faults(hierarchy, plan)
    config = cell.bm_config
    if config is None:
        config = BufferManagerConfig(seed=cell.seed)
    spec = cell.workload
    tagging = cell.track_tenants or tenant_tagging_active()

    multi = None
    if cell.tenants:
        # The tenant page layout (stride with growth headroom) is owned
        # by the workload; the core's TenancyConfig is derived from it.
        multi = MultiTenantWorkload(cell.tenants, cell.scale, seed=spec.seed)
        if config.tenancy is None:
            config = replace(config, tenancy=TenancyConfig(
                num_tenants=multi.num_tenants,
                page_stride=multi.page_stride,
                quota_mode=QuotaMode(cell.quota_mode),
                shares=cell.shares,
                policy_presets=tuple(
                    t.policy_preset for t in cell.tenants
                ),
            ))
    elif tagging and config.tenancy is None:
        config = replace(config, tenancy=TenancyConfig.single())

    bm = BufferManager(hierarchy, cell.policy, config)
    channel = active_telemetry()
    progress = None
    if channel is not None:
        channel.emit(
            "cell_start", cell=cell.label,
            expected_ops=cell.effort.warmup_ops + cell.effort.measure_ops,
        )
        progress = channel.progress_callback(cell.label)
    fraction = active_decision_fraction()
    if fraction is None:
        fraction = cell.trace_decisions
    runner = WorkloadRunner(
        bm,
        RunConfig(
            warmup_ops=cell.effort.warmup_ops,
            measure_ops=cell.effort.measure_ops,
            workers=cell.workers,
            with_wal=cell.with_wal,
            trace_events=cell.trace_events,
            collect_metrics=cell.collect_metrics or metrics_collected(),
            batch_size=active_batch_size() or cell.batch_size,
            track_tenants=tagging,
            progress=progress,
            progress_every_ops=(channel.every_ops if channel is not None
                                else RunConfig.progress_every_ops),
            trace_decisions=fraction,
        ),
    )
    try:
        if multi is not None:
            result = runner.measure_tenants(
                multi, label=cell.label,
                extra_worker_counts=cell.extra_worker_counts,
            )
        elif spec.kind == "ycsb":
            num_tuples = cell.scale.pages(spec.db_gb) * TUPLES_PER_PAGE
            workload = YcsbWorkload(num_tuples=num_tuples,
                                    mix=MIXES[spec.mix],
                                    skew=spec.skew, seed=spec.seed)
            result = runner.measure_ycsb(
                workload, extra_worker_counts=cell.extra_worker_counts
            )
        else:
            workload = TpccWorkload(db_gigabytes=spec.db_gb,
                                    scale=cell.scale, seed=spec.seed)
            result = runner.measure_tpcc(
                workload, extra_worker_counts=cell.extra_worker_counts
            )
    except Exception as exc:
        if channel is not None:
            channel.emit("cell_error", cell=cell.label,
                         error=f"{type(exc).__name__}: {exc}")
        raise
    if channel is not None:
        channel.emit("cell_end", cell=cell.label,
                     operations=result.operations)
    return result


def _cell_weight(cell: Cell) -> float:
    """Expected relative cost of one cell, from its Effort envelope."""
    return float(cell.effort.warmup_ops + cell.effort.measure_ops)


def run_cells(cells, jobs: int = 1) -> list[RunResult]:
    """Run a batch of cells and return results in submission order.

    ``jobs=1`` (or a single cell) executes in-process with no pool at
    all.  ``jobs>1`` fans contiguous chunks of cells over the
    persistent pool; if the platform cannot spawn workers the batch
    degrades to serial, which produces identical results because every
    cell is self-contained.  While :func:`metrics_collection` is
    active, the whole batch's ``(label, result)`` pairs are appended to
    the sink — in submission order — once the batch succeeds.
    """
    cells = list(cells)
    try:
        results = _execute(cells, run_cell, jobs, _cell_weight)
    except _ItemFailure as failure:
        raise CellExecutionError(
            cells[failure.index], failure.cause) from failure.cause
    _record_results(cells, results)
    return results


def run_tasks(fn, items, jobs: int = 1, weigh=None) -> list:
    """Run ``fn`` over ``items`` with the executor's determinism rules.

    The generic sibling of :func:`run_cells` for non-Cell work (the
    chaos crash-point matrix fans out :class:`CrashCase` values this
    way): results come back in submission order regardless of
    completion order, ``jobs<=1`` runs in-process with no pool, and a
    pool that cannot spawn (or breaks wholesale) degrades to a serial
    rerun — identical output, because tasks are self-contained and
    deterministic.  ``fn`` and every item must be picklable.  ``weigh``
    optionally maps an item to its expected relative cost, steering the
    chunk planner's longest-expected-first schedule (default: uniform).
    """
    items = list(items)
    if weigh is None:
        weigh = _uniform_weight
    try:
        return _execute(items, fn, jobs, weigh)
    except _ItemFailure as failure:
        raise failure.cause


def _uniform_weight(_item) -> float:
    return 1.0


@dataclass
class CellBatch:
    """Declare-then-run helper for figure modules.

    Figures accumulate ``(key, cell)`` pairs while walking their grids,
    call :meth:`run`, and read results back by key — keeping the
    declaration order (which fixes the output order) separate from the
    execution order (which the pool is free to shuffle).
    """

    cells: list[Cell] = field(default_factory=list)
    keys: list[object] = field(default_factory=list)
    #: Companion set for O(1) duplicate detection (hashable keys only;
    #: unhashable keys fall back to a linear scan).
    _seen: set = field(default_factory=set, repr=False, compare=False)

    def add(self, key: object, cell: Cell) -> None:
        try:
            duplicate = key in self._seen
        except TypeError:  # unhashable key
            duplicate = key in self.keys
        else:
            self._seen.add(key)
        if duplicate:
            raise ValueError(f"duplicate cell key {key!r}")
        self.keys.append(key)
        self.cells.append(cell)

    def run(self, jobs: int = 1) -> dict[object, RunResult]:
        results = run_cells(self.cells, jobs=jobs)
        return dict(zip(self.keys, results))
