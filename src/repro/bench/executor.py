"""Parallel experiment executor: declarative cells and tasks over a pool.

Every figure in the paper is a grid of independent measurements — one
buffer manager, one workload, one policy/shape/knob combination per
point.  This module turns each grid point into a picklable :class:`Cell`
spec and runs batches of them with :func:`run_cells`, either in-process
(``jobs=1``) or on a :class:`concurrent.futures.ProcessPoolExecutor`.

Design rules:

* a :class:`Cell` carries *specs*, never live objects: the worker builds
  its own hierarchy, buffer manager, and workload from scratch, so a
  parallel run draws exactly the same RNG streams as a serial run and
  the per-figure JSON output is byte-identical for any ``jobs`` value;
* results come back in submission order regardless of completion order;
* a failing cell raises :class:`CellExecutionError` naming the cell's
  full spec, and never hangs the pool (remaining cells are cancelled);
* when worker processes cannot be spawned at all (restricted sandboxes,
  missing ``os.fork``), the batch transparently degrades to serial
  in-process execution.

This module is imported by ``bench.experiments.common`` and must never
import from ``bench.experiments`` (the package init pulls in every
figure module).
"""

from __future__ import annotations

import base64
import contextlib
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from ..core.buffer_manager import BufferManager, BufferManagerConfig
from ..core.policy import MigrationPolicy
from ..hardware.cost_model import StorageHierarchy
from ..hardware.pricing import HierarchyShape
from ..hardware.specs import DEFAULT_SCALE, SimulationScale
from ..workloads.tpcc import TpccWorkload
from ..workloads.ycsb import MIXES, YcsbWorkload
from .harness import RunConfig, RunResult, WorkloadRunner

#: 16 KB pages of 1 KB tuples — the YCSB layout every figure uses.
TUPLES_PER_PAGE = 16


@dataclass(frozen=True)
class Effort:
    """Operation-count envelope for one experiment run."""

    warmup_ops: int
    measure_ops: int


QUICK = Effort(warmup_ops=8_000, measure_ops=15_000)
FULL = Effort(warmup_ops=30_000, measure_ops=60_000)


def effort(quick: bool) -> Effort:
    return QUICK if quick else FULL


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative workload description, resolved inside the worker.

    The YCSB mix is carried by *name* (a :data:`repro.workloads.ycsb.MIXES`
    key) so the spec stays a small value object.
    """

    kind: str  # "ycsb" | "tpcc"
    db_gb: float
    mix: str | None = None
    skew: float = 0.3
    seed: int = 3

    def __post_init__(self) -> None:
        if self.kind not in ("ycsb", "tpcc"):
            raise ValueError(f"unknown workload kind {self.kind!r}")
        if self.kind == "ycsb":
            if self.mix not in MIXES:
                raise ValueError(
                    f"unknown YCSB mix {self.mix!r}; expected one of "
                    f"{sorted(MIXES)}"
                )
        elif self.mix is not None:
            raise ValueError("TPC-C cells take no mix")


@dataclass(frozen=True)
class Cell:
    """One grid point: everything needed to reproduce one measurement.

    All fields are plain values or frozen dataclasses, so cells pickle
    cleanly into worker processes.  The defaults mirror the historical
    ``common.build_bm`` + ``common.run_ycsb``/``run_tpcc`` call chain
    exactly — that equivalence is what keeps parallel figure output
    byte-identical to serial output.
    """

    label: str
    shape: HierarchyShape
    policy: MigrationPolicy
    workload: WorkloadSpec
    effort: Effort = QUICK
    scale: SimulationScale = DEFAULT_SCALE
    bm_config: BufferManagerConfig | None = None
    memory_mode: bool = False
    #: BM RNG seed, used only when ``bm_config`` is None.
    seed: int = 42
    workers: int = 1
    extra_worker_counts: tuple[int, ...] = (16,)
    with_wal: bool = True
    trace_events: bool = False
    #: Attach a MetricsHub over this cell's measurement window.  Also
    #: forced on for every cell while :func:`metrics_collection` is
    #: active (the CLI's ``--metrics-out`` path).
    collect_metrics: bool = False
    #: Operations per batch through the columnar batch path (1 = the
    #: legacy per-op loop).  Overridden for every cell while
    #: :func:`batch_execution` is active.
    batch_size: int = 1

    # ------------------------------------------------------------------
    @classmethod
    def ycsb(cls, label: str, shape: HierarchyShape, policy: MigrationPolicy,
             mix: str, db_gb: float, *, skew: float = 0.3,
             workload_seed: int = 3, **kwargs) -> "Cell":
        """A YCSB grid point (mirrors ``common.run_ycsb`` defaults)."""
        spec = WorkloadSpec(kind="ycsb", db_gb=db_gb, mix=mix, skew=skew,
                            seed=workload_seed)
        return cls(label=label, shape=shape, policy=policy, workload=spec,
                   **kwargs)

    @classmethod
    def tpcc(cls, label: str, shape: HierarchyShape, policy: MigrationPolicy,
             db_gb: float, *, workload_seed: int = 3, **kwargs) -> "Cell":
        """A TPC-C grid point (mirrors ``common.run_tpcc`` defaults)."""
        spec = WorkloadSpec(kind="tpcc", db_gb=db_gb, seed=workload_seed)
        return cls(label=label, shape=shape, policy=policy, workload=spec,
                   **kwargs)

    def describe(self) -> str:
        """One-line spec rendering for error messages and logs."""
        wl = self.workload
        workload = (
            f"{wl.mix} skew={wl.skew}" if wl.kind == "ycsb" else "TPC-C"
        )
        return (
            f"Cell({self.label!r}: shape={self.shape.label}, "
            f"policy={self.policy.name or self.policy}, {workload}, "
            f"db={wl.db_gb:g}GB, effort={self.effort.warmup_ops}+"
            f"{self.effort.measure_ops}, workers={self.workers}, "
            f"seed={self.seed}/{wl.seed})"
        )


class CellExecutionError(RuntimeError):
    """A cell's measurement raised; carries the failing cell's spec."""

    def __init__(self, cell: Cell, cause: BaseException) -> None:
        self.cell = cell
        self.cause = cause
        super().__init__(
            f"experiment cell failed: {cause!r}\n  spec: {cell.describe()}"
        )


# ----------------------------------------------------------------------
# Session-wide metrics collection
# ----------------------------------------------------------------------
#: Environment flag that turns metrics collection on for every cell.
#: An env var (not a module global) so it survives into process-pool
#: workers under both fork and spawn start methods.
METRICS_ENV = "REPRO_COLLECT_METRICS"

#: While :func:`metrics_collection` is active, ``run_cells`` appends
#: ``(label, RunResult)`` per finished cell here, in submission order —
#: the deterministic merge order for the exporters.
_metrics_sink: list[tuple[str, RunResult]] | None = None


def metrics_collected() -> bool:
    """Whether session-wide metrics collection is currently on."""
    return os.environ.get(METRICS_ENV) == "1"


@contextlib.contextmanager
def metrics_collection():
    """Collect a MetricsHub snapshot from every cell run in this scope.

    Yields the sink list; after the scope, it holds one
    ``(cell label, RunResult)`` pair per executed cell in submission
    order regardless of the ``jobs`` value, so merging the snapshots in
    list order gives byte-identical exports at any parallelism.
    """
    global _metrics_sink
    previous_sink = _metrics_sink
    previous_env = os.environ.get(METRICS_ENV)
    sink: list[tuple[str, RunResult]] = []
    _metrics_sink = sink
    os.environ[METRICS_ENV] = "1"
    try:
        yield sink
    finally:
        _metrics_sink = previous_sink
        if previous_env is None:
            os.environ.pop(METRICS_ENV, None)
        else:
            os.environ[METRICS_ENV] = previous_env


def _record_result(cell: Cell, result: RunResult) -> None:
    if _metrics_sink is not None and result.metrics is not None:
        _metrics_sink.append((cell.label, result))


# ----------------------------------------------------------------------
# Session-wide batch execution
# ----------------------------------------------------------------------
#: Environment override for every cell's batch size.  An env var (not a
#: module global) so it survives into process-pool workers under both
#: fork and spawn start methods.
BATCH_ENV = "REPRO_BATCH_SIZE"


def active_batch_size() -> int | None:
    """The batch-size override carried by the environment, or None."""
    payload = os.environ.get(BATCH_ENV)
    if not payload:
        return None
    return int(payload)


@contextlib.contextmanager
def batch_execution(batch_size: int):
    """Run every cell in this scope through the batch path.

    The batch path is byte-identical to the per-op loop by construction,
    so wrapping a figure run in ``batch_execution(1024)`` changes only
    wall-clock time — ``check_golden_figures.py --with-batching`` uses
    exactly this to enforce that contract.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    previous = os.environ.get(BATCH_ENV)
    os.environ[BATCH_ENV] = str(batch_size)
    try:
        yield batch_size
    finally:
        if previous is None:
            os.environ.pop(BATCH_ENV, None)
        else:
            os.environ[BATCH_ENV] = previous


# ----------------------------------------------------------------------
# Session-wide fault-plan injection
# ----------------------------------------------------------------------
#: Environment payload carrying a pickled FaultPlan into pool workers.
#: Same pattern as METRICS_ENV: an env var survives into workers under
#: both fork and spawn start methods, so every cell — local or remote —
#: builds its hierarchy with the same plan installed.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


def active_fault_plan():
    """The FaultPlan carried by the environment, or None."""
    payload = os.environ.get(FAULT_PLAN_ENV)
    if not payload:
        return None
    return pickle.loads(base64.b64decode(payload.encode("ascii")))


@contextlib.contextmanager
def fault_plan_injection(plan):
    """Install ``plan`` under every cell run in this scope.

    Each :func:`run_cell` wraps its hierarchy's devices with
    :func:`~repro.faults.injector.inject_faults` before building the
    buffer manager.  A no-op plan yields pure-delegation wrappers — the
    golden-figure gate uses exactly this to prove figure JSON stays
    byte-identical with the injection layer installed.
    """
    payload = base64.b64encode(pickle.dumps(plan)).decode("ascii")
    previous = os.environ.get(FAULT_PLAN_ENV)
    os.environ[FAULT_PLAN_ENV] = payload
    try:
        yield plan
    finally:
        if previous is None:
            os.environ.pop(FAULT_PLAN_ENV, None)
        else:
            os.environ[FAULT_PLAN_ENV] = previous


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run_cell(cell: Cell) -> RunResult:
    """Build and measure one cell from scratch (runs inside workers too)."""
    hierarchy = StorageHierarchy(cell.shape, cell.scale,
                                 memory_mode=cell.memory_mode)
    plan = active_fault_plan()
    if plan is not None:
        # Devices must be wrapped before the BM captures references.
        from ..faults.injector import inject_faults

        inject_faults(hierarchy, plan)
    config = cell.bm_config
    if config is None:
        config = BufferManagerConfig(seed=cell.seed)
    bm = BufferManager(hierarchy, cell.policy, config)
    runner = WorkloadRunner(
        bm,
        RunConfig(
            warmup_ops=cell.effort.warmup_ops,
            measure_ops=cell.effort.measure_ops,
            workers=cell.workers,
            with_wal=cell.with_wal,
            trace_events=cell.trace_events,
            collect_metrics=cell.collect_metrics or metrics_collected(),
            batch_size=active_batch_size() or cell.batch_size,
        ),
    )
    spec = cell.workload
    if spec.kind == "ycsb":
        num_tuples = cell.scale.pages(spec.db_gb) * TUPLES_PER_PAGE
        workload = YcsbWorkload(num_tuples=num_tuples, mix=MIXES[spec.mix],
                                skew=spec.skew, seed=spec.seed)
        return runner.measure_ycsb(
            workload, extra_worker_counts=cell.extra_worker_counts
        )
    workload = TpccWorkload(db_gigabytes=spec.db_gb, scale=cell.scale,
                            seed=spec.seed)
    return runner.measure_tpcc(
        workload, extra_worker_counts=cell.extra_worker_counts
    )


def _run_serial(cells: list[Cell]) -> list[RunResult]:
    results = []
    for cell in cells:
        try:
            result = run_cell(cell)
        except Exception as exc:
            raise CellExecutionError(cell, exc) from exc
        _record_result(cell, result)
        results.append(result)
    return results


def run_cells(cells, jobs: int = 1) -> list[RunResult]:
    """Run a batch of cells and return results in submission order.

    ``jobs=1`` (or a single cell) executes in-process with no pool at
    all.  ``jobs>1`` fans the cells over a process pool; if the platform
    cannot spawn workers the batch silently degrades to serial, which
    produces identical results because every cell is self-contained.
    """
    cells = list(cells)
    if jobs <= 1 or len(cells) <= 1:
        return _run_serial(cells)
    try:
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(cells)))
    except (OSError, ValueError, NotImplementedError):
        return _run_serial(cells)
    results: list[RunResult] = []
    try:
        futures = [pool.submit(run_cell, cell) for cell in cells]
        for cell, future in zip(cells, futures):
            try:
                results.append(future.result())
            except BrokenProcessPool:
                # Workers could not start (or died wholesale): rerun the
                # whole batch in-process — cells are deterministic, so
                # the fallback result is identical.
                return _run_serial(cells)
            except Exception as exc:
                raise CellExecutionError(cell, exc) from exc
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
    # Record only once the whole batch succeeded, in submission order —
    # the BrokenProcessPool fallback above records via _run_serial, so
    # recording mid-loop would double-count the completed prefix.
    for cell, result in zip(cells, results):
        _record_result(cell, result)
    return results


def run_tasks(fn, items, jobs: int = 1) -> list:
    """Run ``fn`` over ``items`` with the executor's determinism rules.

    The generic sibling of :func:`run_cells` for non-Cell work (the
    chaos crash-point matrix fans out :class:`CrashCase` values this
    way): results come back in submission order regardless of
    completion order, ``jobs<=1`` runs in-process with no pool, and a
    pool that cannot spawn (or breaks wholesale) degrades to a serial
    rerun — identical output, because tasks are self-contained and
    deterministic.  ``fn`` and every item must be picklable.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(items)))
    except (OSError, ValueError, NotImplementedError):
        return [fn(item) for item in items]
    try:
        futures = [pool.submit(fn, item) for item in items]
        results = []
        for future in futures:
            try:
                results.append(future.result())
            except BrokenProcessPool:
                return [fn(item) for item in items]
        return results
    finally:
        pool.shutdown(wait=True, cancel_futures=True)


@dataclass
class CellBatch:
    """Declare-then-run helper for figure modules.

    Figures accumulate ``(key, cell)`` pairs while walking their grids,
    call :meth:`run`, and read results back by key — keeping the
    declaration order (which fixes the output order) separate from the
    execution order (which the pool is free to shuffle).
    """

    cells: list[Cell] = field(default_factory=list)
    keys: list[object] = field(default_factory=list)

    def add(self, key: object, cell: Cell) -> None:
        if key in self.keys:
            raise ValueError(f"duplicate cell key {key!r}")
        self.keys.append(key)
        self.cells.append(cell)

    def run(self, jobs: int = 1) -> dict[object, RunResult]:
        results = run_cells(self.cells, jobs=jobs)
        return dict(zip(self.keys, results))
