"""Workload runner: warm-up, measurement, and simulated throughput.

Every experiment in the paper follows the same protocol (§6.1): build a
storage hierarchy, warm the buffer pools by running the workload, then
measure throughput over a measurement window.  :class:`WorkloadRunner`
implements that protocol for both YCSB and TPC-C against any
:class:`~repro.core.buffer_manager.BufferManager`, charging WAL and
checkpoint traffic for update operations.

Throughput is *simulated* operations per second: the cost accumulator's
makespan analysis converts accumulated device/CPU demands into time for
a configured worker count (1 and 16 in most of the paper's plots — both
can be derived from the same run).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.buffer_manager import BufferManager
from ..core.stats import BufferStats
from ..hardware.specs import Tier
from ..obs.decisions import DecisionRecorder
from ..obs.hub import DEFAULT_EPOCH_NS, MetricsHub
from ..obs.tracer import PageLifecycleTracer
from .event_trace import EventTraceRecorder
from ..wal.checkpoint import Checkpointer
from ..wal.log_manager import LogManager
from ..wal.records import LogRecordType
from ..obs.metrics import BUCKET_BOUNDS
from ..workloads.tenancy import MultiTenantWorkload, TenantAccess
from ..workloads.tpcc import PageAccess, TpccWorkload
from ..workloads.ycsb import COLUMN_SIZE, TUPLE_SIZE, YcsbWorkload

#: Placeholder images used when charging log-record sizes; the content
#: is irrelevant to the cost model, only the length matters.
_UPDATE_BEFORE = bytes(COLUMN_SIZE)
_UPDATE_AFTER = bytes(COLUMN_SIZE)


@dataclass
class RunConfig:
    """Measurement protocol parameters."""

    warmup_ops: int = 20_000
    measure_ops: int = 30_000
    workers: int = 1
    #: Warm-start the buffers with the workload's hottest pages before
    #: the warm-up phase, approximating the paper's fill-until-full
    #: warm-up without its multi-minute runtime.
    prime_buffers: bool = True
    #: Charge WAL traffic for updates (disable for pure-BM microbenches).
    with_wal: bool = True
    #: Write operations between checkpoint flushes; None disables them.
    checkpoint_interval_ops: int | None = 2_000
    #: Operations between inclusivity samples.
    inclusivity_sample_every: int = 2_000
    #: Record a per-edge event trace over the measurement window
    #: (:class:`~repro.bench.event_trace.EventTraceRecorder`).
    trace_events: bool = False
    #: Attach a :class:`~repro.obs.hub.MetricsHub` over the measurement
    #: window; the run result then carries a metrics snapshot.
    collect_metrics: bool = False
    #: Sim-time between the hub's occupancy/dirty-ratio gauge samples.
    metrics_epoch_ns: float = DEFAULT_EPOCH_NS
    #: Fraction of pages traced by the page-lifecycle tracer (0 = off).
    trace_page_fraction: float = 0.0
    #: Operations executed per batch through the columnar batch path.
    #: ``1`` (the default) runs the legacy per-op loop; ``N > 1`` drives
    #: :class:`~repro.core.batch_path.BatchAccessPath`, which is
    #: byte-identical to the per-op loop by construction (stats, costs,
    #: metrics, and figure JSON all match).
    batch_size: int = 1
    #: Project tenant-labelled metrics series over the measurement
    #: window (implies a hub attaches even without ``collect_metrics``);
    #: the run result then carries a per-tenant breakdown.
    track_tenants: bool = False
    #: Optional live-progress hook ``progress(phase, done, total)``,
    #: called every ``progress_every_ops`` operations during warm-up and
    #: measurement (phases ``"warmup"`` / ``"measure"``).  Strictly
    #: out-of-band: the hook sees wall-clock progress only and must
    #: never touch the measured system.
    progress: object | None = None
    #: Operations between progress calls (per-op loops; batched loops
    #: report once per chunk, which is coarser).
    progress_every_ops: int = 2_000
    #: Fraction of pages whose migration/admission/eviction decisions
    #: are recorded as full spans by a
    #: :class:`~repro.obs.decisions.DecisionRecorder` (0 = tracing off;
    #: decision *counters* are complete whenever tracing is on).
    trace_decisions: float = 0.0


@dataclass
class RunResult:
    """Everything a single measured run produces."""

    label: str
    operations: int
    #: ops per simulated second at the configured worker count.
    throughput: float
    workers: int
    stats: BufferStats
    inclusivity: float
    nvm_write_gb: float
    makespan_ns: float
    #: Throughput recomputed for other worker counts from the same run.
    throughput_by_workers: dict[int, float] = field(default_factory=dict)
    #: Per-edge event counts (only when ``RunConfig.trace_events``).
    event_trace: dict[str, int] | None = None
    #: MetricsHub snapshot — registry state plus epoch gauge series
    #: (only when ``RunConfig.collect_metrics``).
    metrics: dict | None = None
    #: Page-lifecycle spans keyed by page id (only when
    #: ``RunConfig.trace_page_fraction`` > 0).
    page_traces: dict | None = None
    #: Per-resource :class:`~repro.hardware.simclock.ResourceUsage` of
    #: the measurement window (busy_ns / operations / bytes_moved per
    #: device channel plus CPU) — the saturation model's inputs.
    resource_usage: dict[str, dict] | None = None
    #: Per-tenant op counts and latency quantiles, keyed by tenant id
    #: (only when ``RunConfig.track_tenants``).
    tenant_breakdown: dict[int, dict] | None = None
    #: Sampled decision spans plus a per-policy digest (only when
    #: ``RunConfig.trace_decisions`` > 0).
    decision_trace: dict | None = None

    @property
    def throughput_kops(self) -> float:
        return self.throughput / 1e3


def _quantile_from_counts(counts: list[int], q: float) -> float:
    """The log2-bucket upper bound holding the ``q``-quantile, mirroring
    :meth:`~repro.obs.metrics.Histogram.quantile` on snapshot state."""
    total = sum(counts)
    if total == 0:
        return 0.0
    target = q * total
    seen = 0
    for index, count in enumerate(counts):
        seen += count
        if seen >= target:
            return BUCKET_BOUNDS[index]
    return BUCKET_BOUNDS[-1]  # pragma: no cover - loop always lands


def tenant_breakdown(metrics: dict | None) -> dict[int, dict] | None:
    """Per-tenant breakdown derived from a MetricsHub snapshot.

    A pure function of the snapshot dict (the hub itself is detached by
    the time results are assembled): per tenant, read/write op counts
    and p50/p99/mean simulated op latency over the merged read+write
    histograms.  Returns None when the snapshot has no tenant series.
    """
    if not metrics:
        return None
    merged: dict[int, dict] = {}
    for entry in metrics.get("registry", {}).values():
        labels = entry.get("labels", {})
        if "tenant" not in labels:
            continue
        tenant = int(labels["tenant"])
        record = merged.setdefault(tenant, {
            "reads": 0,
            "writes": 0,
            "counts": [0] * len(BUCKET_BOUNDS),
            "latency_sum_ns": 0.0,
        })
        state = entry.get("state")
        name = entry.get("name")
        if name == "tenant_ops_total":
            kind = labels.get("kind", "read")
            record["writes" if kind == "write" else "reads"] += int(state)
        elif name == "tenant_op_latency_ns":
            for index, count in enumerate(state["counts"]):
                record["counts"][index] += count
            record["latency_sum_ns"] += state["sum"]
    if not merged:
        return None
    breakdown: dict[int, dict] = {}
    for tenant in sorted(merged):
        record = merged[tenant]
        counts = record.pop("counts")
        observed = sum(counts)
        record["ops"] = record["reads"] + record["writes"]
        record["p50_ns"] = _quantile_from_counts(counts, 0.50)
        record["p99_ns"] = _quantile_from_counts(counts, 0.99)
        record["mean_ns"] = (
            record["latency_sum_ns"] / observed if observed else 0.0
        )
        breakdown[tenant] = record
    return breakdown


class WorkloadRunner:
    """Drives one buffer manager with one workload."""

    def __init__(self, bm: BufferManager, config: RunConfig | None = None) -> None:
        self.bm = bm
        self.config = config or RunConfig()
        self.hierarchy = bm.hierarchy
        self.log: LogManager | None = None
        self.checkpointer: Checkpointer | None = None
        if self.config.with_wal:
            self.log = LogManager(self.hierarchy)
            if self.config.checkpoint_interval_ops:
                self.checkpointer = Checkpointer(
                    self.bm, self.log, self.config.checkpoint_interval_ops,
                    truncate_log=True,
                )

    # ------------------------------------------------------------------
    # Database setup
    # ------------------------------------------------------------------
    def allocate_database(self, num_pages: int) -> None:
        """Create the SSD-resident database pages in one bulk call."""
        self.bm.allocate_pages(range(num_pages))

    # ------------------------------------------------------------------
    # Operation execution
    # ------------------------------------------------------------------
    def _charge_update_wal(self, page_id: int) -> None:
        if self.log is not None:
            self.hierarchy.charge_cpu(self.hierarchy.cpu_costs.logging_ns)
            self.log.append(
                LogRecordType.UPDATE, txn_id=1, page_id=page_id,
                before=_UPDATE_BEFORE, after=_UPDATE_AFTER,
            )
            self.log.commit(txn_id=1)
        if self.checkpointer is not None:
            self.checkpointer.note_operation(is_write=True)

    def _exec_op(self, page_id: int, offset: int, nbytes: int,
                 is_write: bool, tenant_id: int = 0) -> bool:
        """The single accounting path every op variant funnels through.

        Reads serve ``nbytes``; writes additionally charge the WAL
        append/commit and tick the checkpointer.  The YCSB, TPC-C,
        trace, and multi-tenant steps all route here, so tenant-tagged
        runs cannot drift from the single-stream accounting.  Returns
        True when the op was a write.
        """
        if is_write:
            self.bm.write(page_id, offset, nbytes, tenant_id=tenant_id)
            self._charge_update_wal(page_id)
            return True
        self.bm.read(page_id, offset, nbytes, tenant_id=tenant_id)
        return False

    def run_ycsb_op(self, workload: YcsbWorkload) -> bool:
        """Execute one YCSB operation; returns True when it was a write."""
        op = workload.next_op()
        page_id = workload.page_of(op.key)
        offset = workload.offset_of(op.key, op.column)
        nbytes = COLUMN_SIZE if op.is_write else TUPLE_SIZE
        return self._exec_op(page_id, offset, nbytes, op.is_write)

    def run_access(self, access: PageAccess) -> bool:
        """Execute one pre-generated page access (TPC-C / traces).

        TPC-C's insert regions grow during the run, so unseen pages are
        allocated on first touch.  Tenant-tagged accesses
        (:class:`~repro.workloads.tenancy.TenantAccess`) carry their
        tenant through to the buffer manager; plain accesses run as
        tenant 0.
        """
        if not self.bm.page_exists(access.page_id):
            self.bm.allocate_page(access.page_id)
        return self._exec_op(access.page_id, access.offset, access.nbytes,
                             access.is_write,
                             tenant_id=getattr(access, "tenant_id", 0))

    def run_tenant_access(self, access: TenantAccess,
                          think_time_ns: float = 0.0) -> bool:
        """Execute one access of the interleaved multi-tenant stream.

        ``think_time_ns`` (from the tenant's spec) is charged as CPU
        service ahead of the op — the simulation has no idle waiting, so
        think time models a slower arrival rate, not a sleeping client.
        """
        if think_time_ns:
            self.hierarchy.charge_cpu(think_time_ns)
        return self.run_access(access)

    # ------------------------------------------------------------------
    # Batched operation execution (RunConfig.batch_size > 1)
    # ------------------------------------------------------------------
    def run_ycsb_batch(self, workload: YcsbWorkload, count: int) -> int:
        """Execute ``count`` YCSB operations through the batch path.

        Reads between writes execute as columnar runs; each write (and
        its WAL/checkpoint tail) runs at its original position, so the
        operation schedule — and therefore every charge, event, and RNG
        draw — matches ``count`` calls of :meth:`run_ycsb_op` exactly.
        Returns the number of writes executed.
        """
        batch = workload.next_ops(count)
        page_ids = batch.page_ids
        offsets = batch.offsets
        is_writes = batch.is_writes
        if hasattr(page_ids, "tolist"):
            page_ids = page_ids.tolist()
            offsets = offsets.tolist()
            is_writes = is_writes.tolist()
        read_batch = self.bm.batch_path.read_batch
        writes = 0
        i = 0
        while i < count:
            if is_writes[i]:
                self._exec_op(page_ids[i], offsets[i], COLUMN_SIZE, True)
                writes += 1
                i += 1
                continue
            j = i + 1
            while j < count and not is_writes[j]:
                j += 1
            read_batch(page_ids[i:j], offsets[i:j], TUPLE_SIZE)
            i = j
        return writes

    def run_access_batch(self, accesses) -> int:
        """Execute a row-ordered sequence of page accesses batched.

        Contiguous reads of one size over existing pages form columnar
        runs; writes and first-touch allocations run per-op in place.
        Returns the number of writes executed.
        """
        read_batch = self.bm.batch_path.read_batch
        page_exists = self.bm.page_exists
        writes = 0
        n = len(accesses)
        i = 0
        while i < n:
            access = accesses[i]
            if access.is_write or not page_exists(access.page_id):
                if self.run_access(access):
                    writes += 1
                i += 1
                continue
            size = access.nbytes
            j = i + 1
            while (
                j < n
                and not accesses[j].is_write
                and accesses[j].nbytes == size
                and page_exists(accesses[j].page_id)
            ):
                j += 1
            run = accesses[i:j]
            read_batch([a.page_id for a in run], [a.offset for a in run], size)
            i = j
        return writes

    def run_tenant_batch(self, accesses, think_ns: tuple) -> int:
        """Execute a slice of the interleaved tenant stream batched.

        Like :meth:`run_access_batch`, but columnar runs additionally
        break on tenant change (a batch summary never spans tenants) and
        ops of tenants with think time stay on the per-op path — their
        per-op CPU charge must interleave with the accesses exactly as
        the unbatched loop charges it.  Returns the number of writes.
        """
        read_batch = self.bm.batch_path.read_batch
        page_exists = self.bm.page_exists
        writes = 0
        n = len(accesses)
        i = 0
        while i < n:
            access = accesses[i]
            tenant = access.tenant_id
            if access.is_write or think_ns[tenant] \
                    or not page_exists(access.page_id):
                if self.run_tenant_access(access, think_ns[tenant]):
                    writes += 1
                i += 1
                continue
            size = access.nbytes
            j = i + 1
            while (
                j < n
                and not accesses[j].is_write
                and accesses[j].nbytes == size
                and accesses[j].tenant_id == tenant
                and page_exists(accesses[j].page_id)
            ):
                j += 1
            run = accesses[i:j]
            read_batch([a.page_id for a in run], [a.offset for a in run],
                       size, tenant)
            i = j
        return writes

    # ------------------------------------------------------------------
    # Full measurement protocol
    # ------------------------------------------------------------------
    def measure_ycsb(self, workload: YcsbWorkload, label: str | None = None,
                     extra_worker_counts: tuple[int, ...] = ()) -> RunResult:
        self.allocate_database(workload.num_pages)
        if self.config.prime_buffers:
            self._prime(workload.page_popularity())
        return self._measure(
            step=lambda: self.run_ycsb_op(workload),
            label=label or workload.mix.name,
            extra_worker_counts=extra_worker_counts,
            batch_step=lambda count: self.run_ycsb_batch(workload, count),
        )

    def measure_tpcc(self, workload: TpccWorkload, label: str = "TPC-C",
                     extra_worker_counts: tuple[int, ...] = ()) -> RunResult:
        self.allocate_database(workload.num_pages)
        if self.config.prime_buffers:
            self._prime(workload.page_popularity())
        stream = self._tpcc_stream(workload)
        return self._measure(
            step=lambda: self.run_access(next(stream)),
            label=label,
            extra_worker_counts=extra_worker_counts,
            batch_step=lambda count: self.run_access_batch(
                [next(stream) for _ in range(count)]
            ),
        )

    def measure_tenants(self, workload: MultiTenantWorkload,
                        label: str = "tenants",
                        extra_worker_counts: tuple[int, ...] = ()) -> RunResult:
        """Measure the interleaved multi-tenant stream.

        Same protocol as the single-stream entry points — allocate,
        prime (merged popularity ranking), warm up, measure — with each
        op tagged by its tenant.  Combine with
        ``RunConfig.track_tenants`` to get per-tenant breakdowns on the
        result.
        """
        self.bm.allocate_pages(workload.initial_page_ids())
        if self.config.prime_buffers:
            self._prime(workload.page_popularity())
        think = tuple(spec.think_time_ns for spec in workload.specs)

        def step() -> bool:
            access = workload.next_access()
            return self.run_tenant_access(access, think[access.tenant_id])

        return self._measure(
            step=step,
            label=label,
            extra_worker_counts=extra_worker_counts,
            batch_step=lambda count: self.run_tenant_batch(
                [workload.next_access() for _ in range(count)], think
            ),
        )

    def _prime(self, ranked_pages: list[int]) -> None:
        """Warm-start: hottest pages into DRAM, the next tier of heat
        into NVM — but only on tiers the policy can actually populate."""
        policy = self.bm.policy
        cursor = 0
        dram_reachable = (
            self.bm.has_dram and (policy.d_r > 0 or policy.d_w > 0
                                  or not self.bm.has_nvm)
        )
        nvm_reachable = self.bm.has_nvm and (
            policy.n_r > 0 or policy.n_w > 0
            or self.bm.admission_queue is not None
        )
        if dram_reachable:
            while cursor < len(ranked_pages):
                if not self.bm.prime_page(Tier.DRAM, ranked_pages[cursor]):
                    break
                cursor += 1
        if nvm_reachable:
            while cursor < len(ranked_pages):
                if not self.bm.prime_page(Tier.NVM, ranked_pages[cursor]):
                    break
                cursor += 1

    @staticmethod
    def _tpcc_stream(workload: TpccWorkload):
        while True:
            yield from workload.next_transaction()

    def measure_trace(self, trace, label: str = "trace",
                      extra_worker_counts: tuple[int, ...] = ()) -> RunResult:
        """Measure a recorded access trace (wraps around when short).

        Replaying one trace through several buffer managers gives an
        exactly-matched comparison — the Fig. 12 ablation methodology.
        """
        if not len(trace):
            raise ValueError("cannot measure an empty trace")
        self.allocate_database(trace.num_pages)
        if self.config.prime_buffers:
            heat: dict[int, int] = {}
            for access in trace:
                heat[access.page_id] = heat.get(access.page_id, 0) + 1
            self._prime(sorted(heat, key=heat.get, reverse=True))
        accesses = list(trace)

        def stream():
            index = 0
            while True:
                yield accesses[index % len(accesses)]
                index += 1

        iterator = stream()
        return self._measure(
            step=lambda: self.run_access(next(iterator)),
            label=label,
            extra_worker_counts=extra_worker_counts,
            batch_step=lambda count: self.run_access_batch(
                [next(iterator) for _ in range(count)]
            ),
        )

    def _measure(self, step, label: str,
                 extra_worker_counts: tuple[int, ...],
                 batch_step=None) -> RunResult:
        config = self.config
        batch_size = max(1, config.batch_size)
        use_batch = batch_step is not None and batch_size > 1
        progress = config.progress
        progress_every = max(1, config.progress_every_ops)
        if use_batch:
            remaining = config.warmup_ops
            warmed = 0
            while remaining > 0:
                chunk = min(batch_size, remaining)
                batch_step(chunk)
                remaining -= chunk
                warmed += chunk
                if progress is not None:
                    progress("warmup", warmed, config.warmup_ops)
        else:
            for index in range(config.warmup_ops):
                step()
                if progress is not None \
                        and (index + 1) % progress_every == 0:
                    progress("warmup", index + 1, config.warmup_ops)
            if progress is not None and config.warmup_ops % progress_every:
                progress("warmup", config.warmup_ops, config.warmup_ops)
        # Warm-up traffic does not count toward the measurement (§6.1:
        # "we warm up the system until the buffer pool is full").
        self.hierarchy.reset_accounting()
        self.bm.reset_stats()
        # Measurement-window observers are detached in the ``finally``
        # below even when the workload raises: a leaked subscription
        # would double-count every later measurement on this bus (and a
        # slow-path subscriber would silently disable the bus fast path).
        trace = None
        hub = None
        tracer = None
        decisions = None
        try:
            if config.trace_events:
                trace = EventTraceRecorder().attach(self.bm)
            if config.collect_metrics or config.track_tenants:
                hub = MetricsHub(epoch_ns=config.metrics_epoch_ns,
                                 track_tenants=config.track_tenants)
                hub.attach(self.bm)
            if config.trace_page_fraction > 0:
                tracer = PageLifecycleTracer(config.trace_page_fraction)
                tracer.attach(self.bm)
            if config.trace_decisions > 0:
                decisions = DecisionRecorder(
                    config.trace_decisions).attach(self.bm)
                if hub is not None:
                    # Merged once into the hub registry at finalize, the
                    # same one-shot contract as the fault-source merge.
                    hub.decision_source = decisions

            sample_every = max(1, config.inclusivity_sample_every)
            if use_batch:
                # Chunks never straddle a sampling point, so inclusivity
                # samples land after the same operation indexes as the
                # per-op loop above.
                done = 0
                while done < config.measure_ops:
                    chunk = min(
                        batch_size,
                        config.measure_ops - done,
                        sample_every - (done % sample_every),
                    )
                    batch_step(chunk)
                    done += chunk
                    if done % sample_every == 0:
                        self.bm.sample_inclusivity()
                    if progress is not None:
                        progress("measure", done, config.measure_ops)
            else:
                for index in range(config.measure_ops):
                    step()
                    if (index + 1) % sample_every == 0:
                        self.bm.sample_inclusivity()
                    if progress is not None \
                            and (index + 1) % progress_every == 0:
                        progress("measure", index + 1, config.measure_ops)
                if progress is not None \
                        and config.measure_ops % progress_every:
                    progress("measure", config.measure_ops,
                             config.measure_ops)
            if self.bm.inclusivity.num_samples == 0:
                self.bm.sample_inclusivity()
        finally:
            if trace is not None:
                trace.detach()
            if hub is not None:
                hub.detach()  # flushes the in-flight op first
            if decisions is not None:
                decisions.detach()
            if tracer is not None:
                tracer.detach()
        operations = config.measure_ops
        makespan = self.hierarchy.cost.makespan_ns(config.workers)
        throughput = self.hierarchy.throughput(operations, config.workers)
        by_workers = {config.workers: throughput}
        for workers in extra_worker_counts:
            by_workers[workers] = self.hierarchy.throughput(operations, workers)
        metrics_snapshot = hub.snapshot() if hub is not None else None
        return RunResult(
            label=label,
            operations=operations,
            throughput=throughput,
            workers=config.workers,
            stats=self.bm.stats.snapshot(),
            inclusivity=self.bm.inclusivity.mean_ratio(),
            nvm_write_gb=self.bm.nvm_write_volume_gb(),
            makespan_ns=makespan,
            throughput_by_workers=by_workers,
            event_trace=trace.report() if trace is not None else None,
            metrics=metrics_snapshot if config.collect_metrics else None,
            page_traces=tracer.snapshot() if tracer is not None else None,
            resource_usage={
                key: usage.as_dict()
                for key, usage in self.hierarchy.cost.snapshot().items()
            },
            tenant_breakdown=(
                tenant_breakdown(metrics_snapshot)
                if config.track_tenants else None
            ),
            decision_trace=(
                decisions.report() if decisions is not None else None
            ),
        )
