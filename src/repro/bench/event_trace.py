"""Bench-side event-trace reporter.

Subscribes to a buffer manager's :class:`~repro.core.events.EventBus`
and aggregates the run's traffic into per-edge counts — ``hit@DRAM``,
``migrate_up NVM→DRAM``, ``write_back NVM→SSD``, and so on.  Unlike the
legacy :class:`~repro.core.stats.BufferStats` counters (whose field
names hard-code the paper's three tiers), the trace is tier-generic: a
four-tier DRAM→CXL→NVM→SSD chain shows its CXL edges without any new
counter fields.
"""

from __future__ import annotations

from ..core.events import BufferEvent


def _event_key(event: BufferEvent) -> str:
    src = event.src.name if event.src is not None else None
    tier = event.tier.name if event.tier is not None else None
    if src is not None and tier is not None and src != tier:
        return f"{event.type.value}:{src}->{tier}"
    if tier is not None:
        return f"{event.type.value}@{tier}"
    return event.type.value


class EventTraceRecorder:
    """Aggregates buffer events into ``{edge-label: count}``.

    Attach one to a buffer manager before a run::

        trace = EventTraceRecorder().attach(bm)
        ... run the workload ...
        print(trace.report())

    The recorder is cheap (one dict increment per event), so it can stay
    attached for a whole benchmark.
    """

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}
        self._bus = None

    # ------------------------------------------------------------------
    def __call__(self, event: BufferEvent) -> None:
        self.apply_event(event.type, event.page_id, event.tier, event.src,
                         event.dirty)

    def apply_op_batch(self, summary) -> None:
        """Bus batch path: bulk-add the counts of a fast-path run.

        Mirrors ``summary.count`` per-op sequences of
        OP_READ → HIT@tier [→ DIRECT_READ@tier].
        """
        count = summary.count
        counts = self.counts
        tier_name = summary.tier.name
        counts["op_read"] = counts.get("op_read", 0) + count
        hit_key = f"hit@{tier_name}"
        counts[hit_key] = counts.get(hit_key, 0) + count
        if summary.direct:
            direct_key = f"direct_read@{tier_name}"
            counts[direct_key] = counts.get(direct_key, 0) + count

    def apply_event(self, etype, page_id, tier, src, dirty) -> None:
        """Bus fast path: aggregate straight from the event fields, so an
        attached recorder keeps the bus on its no-allocation path."""
        src_name = src.name if src is not None else None
        tier_name = tier.name if tier is not None else None
        if src_name is not None and tier_name is not None and src_name != tier_name:
            key = f"{etype.value}:{src_name}->{tier_name}"
        elif tier_name is not None:
            key = f"{etype.value}@{tier_name}"
        else:
            key = etype.value
        self.counts[key] = self.counts.get(key, 0) + 1

    def attach(self, bm) -> "EventTraceRecorder":
        """Subscribe to ``bm``'s event bus (accepts a bus directly too)."""
        bus = getattr(bm, "events", bm)
        bus.subscribe(self)
        self._bus = bus
        return self

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self)
            self._bus = None

    def reset(self) -> None:
        self.counts.clear()

    # ------------------------------------------------------------------
    def report(self) -> dict[str, int]:
        """The trace as a plain dict, keys sorted for stable JSON output."""
        return {key: self.counts[key] for key in sorted(self.counts)}

    def total(self, event_type) -> int:
        """Sum of all edges of one event type.

        Accepts an :class:`~repro.core.events.EventType` member or its
        string value (e.g. ``"migrate_up"``).
        """
        event_type = getattr(event_type, "value", event_type)
        prefix_edge = f"{event_type}:"
        prefix_at = f"{event_type}@"
        return sum(
            count for key, count in self.counts.items()
            if key == event_type
            or key.startswith(prefix_edge)
            or key.startswith(prefix_at)
        )

    def render(self) -> str:
        """A small human-readable table for bench logs."""
        if not self.counts:
            return "(no events recorded)"
        width = max(len(key) for key in self.counts)
        return "\n".join(
            f"{key:<{width}}  {self.counts[key]:>10}"
            for key in sorted(self.counts)
        )
