"""Experiment result containers and paper-style text rendering.

Every experiment module produces an :class:`ExperimentResult` holding
named series (x → y maps) plus free-form notes.  The renderer prints
rows in the same orientation as the paper's tables/figures so results
can be eyeballed against the original, and results can be dumped to
JSON for archival.

The module also builds **run summaries** — the artifact behind
``repro-experiments report`` and the CI run-report upload: per-figure
wall timings, decision-trace digests, fault counters, and tenant
breakdowns folded from the merged metrics registry
(:func:`build_run_summary` / :func:`render_run_summary`) — and diffs
two ``BENCH_repro.json``-style wall-clock reports into a regression
table (:func:`diff_bench_reports` / :func:`render_bench_diff`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any


@dataclass
class Series:
    """One line of a figure: label plus (x, y) points."""

    label: str
    points: list[tuple[Any, float]] = field(default_factory=list)

    def add(self, x: Any, y: float) -> None:
        self.points.append((x, y))

    @property
    def xs(self) -> list[Any]:
        return [x for x, _ in self.points]

    @property
    def ys(self) -> list[float]:
        return [y for _, y in self.points]

    def y_at(self, x: Any) -> float:
        for px, py in self.points:
            if px == x:
                return py
        raise KeyError(f"series {self.label!r} has no point at x={x!r}")

    @property
    def peak_x(self) -> Any:
        if not self.points:
            raise ValueError("empty series")
        return max(self.points, key=lambda p: p[1])[0]


@dataclass
class ExperimentResult:
    """Everything one table/figure reproduction produced."""

    experiment_id: str
    title: str
    series: dict[str, Series] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    def new_series(self, label: str) -> Series:
        series = Series(label)
        self.series[label] = series
        return series

    def note(self, text: str) -> None:
        self.notes.append(text)

    # ------------------------------------------------------------------
    def render(self, value_format: str = "{:>12.1f}") -> str:
        """Paper-style text table: one row per series, one column per x."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.metadata:
            meta = ", ".join(f"{k}={v}" for k, v in self.metadata.items())
            lines.append(f"   [{meta}]")
        all_xs: list[Any] = []
        for series in self.series.values():
            for x in series.xs:
                if x not in all_xs:
                    all_xs.append(x)
        if all_xs:
            label_width = max((len(s) for s in self.series), default=10) + 2
            header = " " * label_width + "".join(f"{str(x):>12}" for x in all_xs)
            lines.append(header)
            for label, series in self.series.items():
                row = f"{label:<{label_width}}"
                lookup = dict(series.points)
                for x in all_xs:
                    if x in lookup:
                        row += value_format.format(lookup[x])
                    else:
                        row += " " * 12
                lines.append(row)
        for note in self.notes:
            lines.append(f"   note: {note}")
        return "\n".join(lines)

    def ascii_chart(self, label: str, width: int = 60, height: int = 12) -> str:
        """A terminal line chart of one series (for example scripts)."""
        series = self.series[label]
        ys = series.ys
        if not ys:
            return f"{label}: (empty)"
        lo, hi = min(ys), max(ys)
        span = hi - lo or 1.0
        # Resample the series onto the chart width.
        columns = []
        for x_pos in range(width):
            index = min(len(ys) - 1, int(x_pos * len(ys) / width))
            columns.append(int((ys[index] - lo) / span * (height - 1)))
        lines = [f"{label}  [{lo:.3g} .. {hi:.3g}]"]
        for row in range(height - 1, -1, -1):
            lines.append("".join("█" if col >= row else " " for col in columns))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "series": {
                label: [[x, y] for x, y in series.points]
                for label, series in self.series.items()
            },
            "notes": list(self.notes),
            "metadata": dict(self.metadata),
        }

    def save_json(self, directory: str | Path) -> Path:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.experiment_id}.json"
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, default=str)
        return path

    @classmethod
    def load_json(cls, path: str | Path) -> "ExperimentResult":
        with open(path) as fh:
            raw = json.load(fh)
        result = cls(raw["experiment_id"], raw["title"])
        for label, points in raw["series"].items():
            series = result.new_series(label)
            for x, y in points:
                series.add(x, y)
        result.notes = list(raw.get("notes", []))
        result.metadata = dict(raw.get("metadata", {}))
        return result


# ----------------------------------------------------------------------
# Run summaries (repro-experiments report / CI run-report artifact)
# ----------------------------------------------------------------------
#: Counter families the run summary folds out of the merged registry.
_FAULT_FAMILIES = (
    "faults_injected_total",
    "device_retries_total",
    "torn_writes_detected_total",
)
_TENANT_FAMILIES = (
    "tenant_ops_total",
    "tenant_admissions_total",
    "tenant_admission_considerations_total",
)
_DECISION_FAMILIES = (
    "migration_decisions_total",
    "eviction_victims_total",
)


def _counter_families(registry, names: tuple[str, ...]) -> dict:
    """``{family: {label-key: value}}`` for the named counter families."""
    out: dict[str, dict[str, float]] = {name: {} for name in names}
    for series in registry.series():
        if series.name in out and series.kind == "counter":
            key = ",".join(
                f"{k}={v}" for k, v in sorted(series.labels.items())
            ) or "total"
            out[series.name][key] = series.value
    return {name: dict(sorted(values.items()))
            for name, values in out.items() if values}


def build_run_summary(experiments: list[dict], registry=None,
                      telemetry: dict | None = None,
                      generated_at: float | None = None) -> dict:
    """One JSON-able digest of a whole ``repro-experiments`` run.

    ``experiments`` carries one entry per figure —
    ``{"experiment_id", "title", "elapsed_s", "series", "points"}``
    plus an optional ``"decisions"`` digest (a
    :meth:`~repro.obs.decisions.DecisionRecorder.summary`-shaped dict).
    ``registry`` is the merged :class:`~repro.obs.metrics.MetricsRegistry`
    when the run collected metrics; fault counters, tenant breakdowns,
    and decision histograms are folded out of it.  ``telemetry`` is a
    :meth:`~repro.bench.telemetry.ProgressAggregator.summary` dict.
    """
    summary: dict = {
        "schema": "repro-run-summary/1",
        "experiments": [dict(entry) for entry in experiments],
        "total_elapsed_s": round(
            sum(entry.get("elapsed_s", 0.0) for entry in experiments), 3),
    }
    if generated_at is not None:
        summary["generated_at"] = generated_at
    if registry is not None:
        summary["fault_counters"] = _counter_families(
            registry, _FAULT_FAMILIES)
        summary["tenant_breakdown"] = _counter_families(
            registry, _TENANT_FAMILIES)
        summary["decision_counters"] = _counter_families(
            registry, _DECISION_FAMILIES)
    if telemetry is not None:
        summary["telemetry"] = dict(telemetry)
    return summary


def render_run_summary(summary: dict) -> str:
    """The run summary as a human-readable report."""
    lines = ["== run report =="]
    experiments = summary.get("experiments", [])
    if experiments:
        width = max(len(e["experiment_id"]) for e in experiments) + 2
        lines.append(f"{'figure':<{width}}{'wall':>9}  {'series':>6}  "
                     f"{'points':>6}  title")
        for entry in experiments:
            lines.append(
                f"{entry['experiment_id']:<{width}}"
                f"{entry.get('elapsed_s', 0.0):>8.1f}s"
                f"  {entry.get('series', 0):>6}"
                f"  {entry.get('points', 0):>6}"
                f"  {entry.get('title', '')}"
            )
        lines.append(f"{'total':<{width}}"
                     f"{summary.get('total_elapsed_s', 0.0):>8.1f}s")
    for entry in experiments:
        digest = entry.get("decisions")
        if not digest:
            continue
        lines.append(f"   decisions[{entry['experiment_id']}]: "
                     f"{digest.get('spans_recorded', 0)} span(s) "
                     f"(+{digest.get('spans_dropped', 0)} dropped) at "
                     f"fraction {digest.get('sample_fraction', 0)}")
    for section, title in (
        ("decision_counters", "decision counters"),
        ("fault_counters", "fault counters"),
        ("tenant_breakdown", "tenant breakdown"),
    ):
        families = summary.get(section)
        if not families:
            continue
        lines.append(f"-- {title} --")
        for family, values in families.items():
            for key, value in values.items():
                lines.append(f"   {family}{{{key}}} = {value:g}")
    telemetry = summary.get("telemetry")
    if telemetry:
        lines.append(
            f"-- telemetry --\n"
            f"   {telemetry.get('cells_seen', 0)} cell(s) observed, "
            f"{telemetry.get('ops_observed', 0):,} ops, "
            f"{telemetry.get('events_seen', 0)} event(s)"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Wall-clock report diffing (repro-experiments report --diff)
# ----------------------------------------------------------------------
#: Key suffixes that decide a metric's good direction.  Anything else
#: is informational: shown when it moved, never flagged.
_HIGHER_IS_BETTER = ("ops_per_second", "speedup", "speedup_vs_per_op")
_LOWER_IS_BETTER = ("wall_seconds", "overhead_fraction")


def _numeric_leaves(payload: dict, prefix: str = "") -> dict[str, float]:
    leaves: dict[str, float] = {}
    for key in sorted(payload):
        value = payload[key]
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            leaves.update(_numeric_leaves(value, path))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            leaves[path] = float(value)
    return leaves


def _direction(path: str) -> int:
    """+1 higher-is-better, -1 lower-is-better, 0 informational."""
    leaf = path.rsplit(".", 1)[-1]
    if any(leaf.endswith(suffix) for suffix in _HIGHER_IS_BETTER):
        return 1
    if any(leaf.endswith(suffix) for suffix in _LOWER_IS_BETTER):
        return -1
    return 0


def diff_bench_reports(old: dict, new: dict,
                       tolerance: float = 0.10) -> dict:
    """Diff two ``BENCH_repro.json``-style reports into a regression table.

    Every shared numeric leaf becomes a row with the old/new values and
    the relative delta; direction-aware keys (ops/s, speedups: higher
    is better — wall seconds, overhead fractions: lower is better) are
    flagged ``regressed`` when they moved against their direction by
    more than ``tolerance``, ``improved`` when they moved with it.
    Returns ``{"rows": [...], "regressions": [...], "ok": bool}``.
    """
    old_leaves = _numeric_leaves(old)
    new_leaves = _numeric_leaves(new)
    rows: list[dict] = []
    regressions: list[str] = []
    for path in sorted(set(old_leaves) | set(new_leaves)):
        if path not in old_leaves:
            rows.append({"metric": path, "old": None,
                         "new": new_leaves[path], "delta": None,
                         "status": "added"})
            continue
        if path not in new_leaves:
            rows.append({"metric": path, "old": old_leaves[path],
                         "new": None, "delta": None, "status": "removed"})
            continue
        old_value, new_value = old_leaves[path], new_leaves[path]
        delta = ((new_value - old_value) / abs(old_value)
                 if old_value else None)
        direction = _direction(path)
        status = "ok"
        if direction and delta is not None:
            if delta * direction < -tolerance:
                status = "regressed"
                regressions.append(
                    f"{path}: {old_value:g} -> {new_value:g} "
                    f"({delta:+.1%}, tolerance {tolerance:.0%})"
                )
            elif delta * direction > tolerance:
                status = "improved"
        rows.append({"metric": path, "old": old_value, "new": new_value,
                     "delta": delta, "status": status})
    return {"rows": rows, "regressions": regressions,
            "ok": not regressions}


def render_bench_diff(diff: dict, show_unchanged: bool = False) -> str:
    """The regression table as text, worst rows first kept in path order."""
    lines = ["== bench diff =="]
    width = max((len(row["metric"]) for row in diff["rows"]), default=10) + 2
    lines.append(f"{'metric':<{width}}{'old':>14}{'new':>14}{'delta':>9}"
                 f"  status")
    shown = 0
    for row in diff["rows"]:
        if row["status"] == "ok" and not show_unchanged:
            continue
        shown += 1
        old = f"{row['old']:g}" if row["old"] is not None else "-"
        new = f"{row['new']:g}" if row["new"] is not None else "-"
        delta = f"{row['delta']:+.1%}" if row["delta"] is not None else "-"
        lines.append(f"{row['metric']:<{width}}{old:>14}{new:>14}{delta:>9}"
                     f"  {row['status']}")
    if not shown:
        lines.append("   (no rows moved beyond tolerance)")
    lines.append("PASS" if diff["ok"] else
                 f"FAIL: {len(diff['regressions'])} regression(s)")
    return "\n".join(lines)
