"""Experiment result containers and paper-style text rendering.

Every experiment module produces an :class:`ExperimentResult` holding
named series (x → y maps) plus free-form notes.  The renderer prints
rows in the same orientation as the paper's tables/figures so results
can be eyeballed against the original, and results can be dumped to
JSON for archival.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any


@dataclass
class Series:
    """One line of a figure: label plus (x, y) points."""

    label: str
    points: list[tuple[Any, float]] = field(default_factory=list)

    def add(self, x: Any, y: float) -> None:
        self.points.append((x, y))

    @property
    def xs(self) -> list[Any]:
        return [x for x, _ in self.points]

    @property
    def ys(self) -> list[float]:
        return [y for _, y in self.points]

    def y_at(self, x: Any) -> float:
        for px, py in self.points:
            if px == x:
                return py
        raise KeyError(f"series {self.label!r} has no point at x={x!r}")

    @property
    def peak_x(self) -> Any:
        if not self.points:
            raise ValueError("empty series")
        return max(self.points, key=lambda p: p[1])[0]


@dataclass
class ExperimentResult:
    """Everything one table/figure reproduction produced."""

    experiment_id: str
    title: str
    series: dict[str, Series] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    def new_series(self, label: str) -> Series:
        series = Series(label)
        self.series[label] = series
        return series

    def note(self, text: str) -> None:
        self.notes.append(text)

    # ------------------------------------------------------------------
    def render(self, value_format: str = "{:>12.1f}") -> str:
        """Paper-style text table: one row per series, one column per x."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.metadata:
            meta = ", ".join(f"{k}={v}" for k, v in self.metadata.items())
            lines.append(f"   [{meta}]")
        all_xs: list[Any] = []
        for series in self.series.values():
            for x in series.xs:
                if x not in all_xs:
                    all_xs.append(x)
        if all_xs:
            label_width = max((len(s) for s in self.series), default=10) + 2
            header = " " * label_width + "".join(f"{str(x):>12}" for x in all_xs)
            lines.append(header)
            for label, series in self.series.items():
                row = f"{label:<{label_width}}"
                lookup = dict(series.points)
                for x in all_xs:
                    if x in lookup:
                        row += value_format.format(lookup[x])
                    else:
                        row += " " * 12
                lines.append(row)
        for note in self.notes:
            lines.append(f"   note: {note}")
        return "\n".join(lines)

    def ascii_chart(self, label: str, width: int = 60, height: int = 12) -> str:
        """A terminal line chart of one series (for example scripts)."""
        series = self.series[label]
        ys = series.ys
        if not ys:
            return f"{label}: (empty)"
        lo, hi = min(ys), max(ys)
        span = hi - lo or 1.0
        # Resample the series onto the chart width.
        columns = []
        for x_pos in range(width):
            index = min(len(ys) - 1, int(x_pos * len(ys) / width))
            columns.append(int((ys[index] - lo) / span * (height - 1)))
        lines = [f"{label}  [{lo:.3g} .. {hi:.3g}]"]
        for row in range(height - 1, -1, -1):
            lines.append("".join("█" if col >= row else " " for col in columns))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "series": {
                label: [[x, y] for x, y in series.points]
                for label, series in self.series.items()
            },
            "notes": list(self.notes),
            "metadata": dict(self.metadata),
        }

    def save_json(self, directory: str | Path) -> Path:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.experiment_id}.json"
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, default=str)
        return path

    @classmethod
    def load_json(cls, path: str | Path) -> "ExperimentResult":
        with open(path) as fh:
            raw = json.load(fh)
        result = cls(raw["experiment_id"], raw["title"])
        for label, points in raw["series"].items():
            series = result.new_series(label)
            for x, y in points:
                series.add(x, y)
        result.notes = list(raw.get("notes", []))
        result.metadata = dict(raw.get("metadata", {}))
        return result
