"""Streaming worker telemetry: live progress out-of-band of results.

A long ``repro-experiments --all --jobs N`` suite (or a chaos matrix)
is a black box while it runs: the persistent pool executes cells in
worker processes and nothing surfaces until a whole batch returns.
This module adds a **strictly out-of-band** side channel:

* a :class:`TelemetryChannel` wraps a ``multiprocessing.Manager``
  queue proxy — unlike a plain ``multiprocessing.Queue``, a manager
  proxy pickles, so it can ride inside the executor's per-submission
  :class:`~repro.bench.executor.ExecContext` into pool workers that
  were forked long before the channel existed;
* workers emit small dict events — cell started (with the expected op
  count), periodic progress (phase, ops done of expected), cell
  finished, chaos case started/finished — via fire-and-forget
  :meth:`TelemetryChannel.emit` calls that swallow every transport
  error (a telemetry hiccup must never fail a measurement);
* a session-side :class:`ProgressAggregator` daemon thread drains the
  queue, tracks per-cell state, and renders a live status line
  (active cells, phase, percent done, aggregate ops/s, ETA) to stderr.

Nothing in this path touches result payloads: events carry wall-clock
timestamps and progress counts only, the renderer writes to stderr,
and the measured system never blocks on the channel — so figure JSON
stays byte-identical with the channel attached at any ``--jobs``
(``check_golden_figures.py --with-telemetry`` pins this down).
"""

from __future__ import annotations

import queue as queue_mod
import sys
import threading
import time

#: Default operations between progress events — coarse enough that a
#: quick-effort cell emits ~a dozen events, fine enough for a live bar.
DEFAULT_EVERY_OPS = 2_000


class TelemetryChannel:
    """A picklable, fire-and-forget event channel into the session.

    Built by :func:`open_channel` in the session process; travels into
    workers via :class:`~repro.bench.executor.ExecContext`.  ``emit``
    never raises and never blocks the measured workload: any transport
    failure (manager gone, queue full, interpreter shutdown) drops the
    event silently — telemetry is advisory by design.
    """

    def __init__(self, queue, every_ops: int = DEFAULT_EVERY_OPS,
                 manager=None) -> None:
        self.queue = queue
        self.every_ops = max(1, int(every_ops))
        # The manager handle stays session-side only (workers get the
        # picklable queue proxy); it keeps the server process alive.
        self._manager = manager

    def __getstate__(self):
        # Only manager proxies survive pickling; the in-process fallback
        # queue travels as None, so worker-side emits become no-ops
        # instead of poisoning the chunk submission with a pickle error.
        queue = self.queue
        try:
            from multiprocessing.managers import BaseProxy

            if not isinstance(queue, BaseProxy):
                queue = None
        except Exception:
            queue = None
        return {"queue": queue, "every_ops": self.every_ops}

    def __setstate__(self, state):
        self.queue = state["queue"]
        self.every_ops = state["every_ops"]
        self._manager = None

    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields) -> None:
        """Send one event; failures are swallowed (advisory channel)."""
        if self.queue is None:
            return
        event = {"kind": kind, "ts": time.time(), **fields}
        try:
            self.queue.put_nowait(event)
        except Exception:
            pass

    def progress_callback(self, label: str):
        """A harness-compatible ``progress(phase, done, total)`` hook."""
        def progress(phase: str, done: int, total: int) -> None:
            self.emit("progress", cell=label, phase=phase, done=done,
                      total=total)
        return progress

    def close(self) -> None:
        """Shut the manager down (session side, after the aggregator)."""
        manager = self._manager
        self._manager = None
        if manager is not None:
            try:
                manager.shutdown()
            except Exception:
                pass


def open_channel(every_ops: int = DEFAULT_EVERY_OPS) -> TelemetryChannel:
    """Create a channel whose queue crosses process boundaries.

    A ``multiprocessing.Manager`` queue proxy is used because proxies
    pickle (plain ``mp.Queue`` objects may only be inherited, which a
    persistent pool forked earlier cannot do).  Where the manager
    cannot start (restricted sandboxes without semaphores), the channel
    degrades to an in-process ``queue.Queue`` — live progress then
    covers only same-process work, and worker events are dropped by
    ``emit``'s catch-all, never raised.
    """
    manager = None
    try:
        import multiprocessing

        manager = multiprocessing.Manager()
        channel_queue = manager.Queue()
    except Exception:
        manager = None
        channel_queue = queue_mod.Queue()
    return TelemetryChannel(channel_queue, every_ops, manager=manager)


class ProgressAggregator:
    """Session-side consumer: drains the channel, renders live progress.

    One daemon thread polls the queue; per-cell state (phase, ops done
    of expected) feeds a single status line rewritten at most every
    ``render_interval`` seconds.  All output goes to ``stream``
    (default stderr) so stdout stays reserved for tables and JSON.
    """

    _SENTINEL = {"kind": "__stop__"}

    def __init__(self, channel: TelemetryChannel, stream=None,
                 render_interval: float = 0.5) -> None:
        self.channel = channel
        self.stream = stream if stream is not None else sys.stderr
        self.render_interval = render_interval
        self.cells: dict[str, dict] = {}
        self.cases_done = 0
        self.cases_total = 0
        self.events_seen = 0
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._last_render = 0.0
        self._started = 0.0
        self._rendered = False

    # ------------------------------------------------------------------
    def start(self) -> "ProgressAggregator":
        self._started = time.time()
        self._thread = threading.Thread(
            target=self._drain, name="telemetry-aggregator", daemon=True)
        self._thread.start()
        return self

    def stop(self, final_line: bool = True) -> None:
        """Stop draining; optionally print a final summary line."""
        thread = self._thread
        if thread is None:
            return
        self.channel.emit("__stop__")
        thread.join(timeout=5.0)
        self._thread = None
        self.clear_line()
        if final_line:
            try:
                print(self.render_summary(), file=self.stream)
            except Exception:
                pass

    def clear_line(self) -> None:
        """Blank the in-place status line (idempotent, never raises).

        The live renderer rewrites one ``\\r``-anchored line; anything
        the session prints afterwards — a traceback, a
        KeyboardInterrupt notice, the final summary — would otherwise
        land on top of stale progress text.
        """
        if not self._rendered:
            return
        self._rendered = False
        try:
            print(f"\r{'':<100}\r", end="", file=self.stream, flush=True)
        except Exception:
            pass

    # ------------------------------------------------------------------
    def _drain(self) -> None:
        # The finally guarantees the status line is wiped even when the
        # drain dies mid-run (KeyboardInterrupt in the main thread tears
        # down the manager queue and get() starts raising, or _apply
        # trips on a malformed event) — stderr must be left clean for
        # whatever error output follows.
        try:
            while True:
                try:
                    event = self.channel.queue.get(timeout=0.25)
                except (KeyboardInterrupt, SystemExit):
                    return
                except Exception:
                    event = None
                if event is not None:
                    if event.get("kind") == "__stop__":
                        return
                    self._apply(event)
                now = time.time()
                if now - self._last_render >= self.render_interval:
                    self._last_render = now
                    self._render(now)
        finally:
            self.clear_line()

    def _apply(self, event: dict) -> None:
        kind = event.get("kind")
        with self._lock:
            self.events_seen += 1
            if kind == "cell_start":
                self.cells[event["cell"]] = {
                    "phase": "start",
                    "done": 0,
                    "total": event.get("expected_ops", 0),
                    "started": event.get("ts", time.time()),
                    "finished": None,
                }
            elif kind == "progress":
                state = self.cells.setdefault(event["cell"], {
                    "phase": "?", "done": 0, "total": 0,
                    "started": event.get("ts", time.time()),
                    "finished": None,
                })
                state["phase"] = event.get("phase", "?")
                # Progress counts are per-phase; expose warmup+measure
                # position against the cell's whole op envelope.
                done = event.get("done", 0)
                if state["phase"] == "measure":
                    done += state.get("warmup_ops", 0)
                else:
                    state["warmup_ops"] = max(
                        state.get("warmup_ops", 0), done)
                state["done"] = max(state["done"], done)
            elif kind == "cell_end":
                state = self.cells.setdefault(event["cell"], {
                    "phase": "done", "done": 0, "total": 0,
                    "started": event.get("ts", time.time()),
                    "finished": None,
                })
                state["phase"] = "done"
                state["finished"] = event.get("ts", time.time())
                if event.get("operations"):
                    state["done"] = state["total"] = event["operations"]
                elif state["total"]:
                    state["done"] = state["total"]
            elif kind == "case_start":
                self.cases_total += 1
            elif kind == "case_end":
                self.cases_done += 1

    # ------------------------------------------------------------------
    def _snapshot(self) -> tuple[list[tuple[str, dict]], int, int, int]:
        with self._lock:
            cells = [(label, dict(state))
                     for label, state in self.cells.items()]
            return cells, self.cases_done, self.cases_total, self.events_seen

    def render_line(self, now: float | None = None) -> str:
        """The current one-line status (also used by tests)."""
        now = now if now is not None else time.time()
        cells, cases_done, cases_total, _ = self._snapshot()
        active = [(label, s) for label, s in cells if s["phase"] != "done"]
        done = len(cells) - len(active)
        ops_done = sum(s["done"] for _, s in cells)
        elapsed = max(now - self._started, 1e-9)
        rate = ops_done / elapsed
        parts = [f"live: {len(active)} running, {done} cells done"]
        if active:
            label, state = active[0]
            total = state["total"]
            pct = f" {100.0 * state['done'] / total:.0f}%" if total else ""
            parts.append(f"[{label} {state['phase']}{pct}]")
        if ops_done:
            parts.append(f"{rate:,.0f} ops/s")
            remaining = sum(
                max(s["total"] - s["done"], 0) for _, s in active)
            if remaining and rate > 0:
                parts.append(f"ETA {remaining / rate:.0f}s")
        if cases_total:
            parts.append(f"chaos {cases_done}/{cases_total} cases")
        return "  ".join(parts)

    def _render(self, now: float) -> None:
        try:
            print(f"\r{self.render_line(now):<100}", end="",
                  file=self.stream, flush=True)
            self._rendered = True
        except Exception:
            pass

    def render_summary(self) -> str:
        """A final plain line once the run is over."""
        cells, cases_done, cases_total, events = self._snapshot()
        ops = sum(s["done"] for _, s in cells)
        elapsed = max(time.time() - self._started, 1e-9)
        line = (f"\rtelemetry: {len(cells)} cell(s), {ops:,} ops observed, "
                f"{events} event(s) in {elapsed:.1f}s")
        if cases_total:
            line += f", {cases_done}/{cases_total} chaos cases"
        return line

    def summary(self) -> dict:
        """JSON-able aggregate of everything the channel delivered."""
        cells, cases_done, cases_total, events = self._snapshot()
        return {
            "cells_seen": len(cells),
            "cells_finished": sum(
                1 for _, s in cells if s["phase"] == "done"),
            "ops_observed": sum(s["done"] for _, s in cells),
            "events_seen": events,
            "cases_done": cases_done,
            "cases_total": cases_total,
        }
