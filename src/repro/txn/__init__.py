"""Transactions: MVTO concurrency control and timestamp management."""

from .mvto import INFINITY_TS, MvtoStore, Version, VersionChain, run_transaction
from .transaction import (
    TimestampOracle,
    Transaction,
    TransactionAborted,
    TxnState,
)

__all__ = [
    "INFINITY_TS",
    "MvtoStore",
    "TimestampOracle",
    "Transaction",
    "TransactionAborted",
    "TxnState",
    "Version",
    "VersionChain",
    "run_transaction",
]
