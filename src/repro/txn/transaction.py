"""Transaction objects and lifecycle states.

Transactions are timestamped at begin; the timestamp doubles as the
transaction identifier and as the MVTO read/write ordering point
(Wu et al. [39]).
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Any


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class TransactionAborted(Exception):
    """The MVTO protocol decided this transaction must abort."""

    def __init__(self, txn_id: int, reason: str) -> None:
        super().__init__(f"txn {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


@dataclass
class Transaction:
    """One MVTO transaction.

    ``timestamp`` orders the transaction in the serial history.  The
    write set tracks keys this transaction created new versions for,
    so commit/abort can finalise or roll them back; the read set exists
    for observability and testing.
    """

    timestamp: int
    state: TxnState = TxnState.ACTIVE
    write_set: set[Any] = field(default_factory=set)
    read_set: set[Any] = field(default_factory=set)
    #: LSN of this transaction's most recent log record (backward chain).
    last_lsn: int = -1

    @property
    def txn_id(self) -> int:
        return self.timestamp

    @property
    def is_active(self) -> bool:
        return self.state is TxnState.ACTIVE

    def ensure_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionAborted(
                self.txn_id, f"operation on {self.state.value} transaction"
            )


class TimestampOracle:
    """Monotonically increasing timestamp allocator."""

    def __init__(self, start: int = 1) -> None:
        self._next = start
        self._lock = threading.Lock()

    def next(self) -> int:
        with self._lock:
            timestamp = self._next
            self._next += 1
            return timestamp

    @property
    def current(self) -> int:
        with self._lock:
            return self._next - 1
