"""Multi-version timestamp ordering (MVTO) concurrency control.

Implements the protocol Spitfire uses (§5.2, following the survey of
Wu et al. [39]):

* every tuple has a version chain, newest first;
* a reader with timestamp ``T`` reads the newest version whose
  ``begin <= T < end`` and records ``T`` in the version's ``read_ts``;
* a writer with timestamp ``T`` may only update the newest committed
  version ``V`` if ``V.read_ts <= T`` (no later reader has seen ``V``)
  and ``V`` is not write-locked by another active transaction; it
  write-locks ``V`` and stages a new version;
* commit installs staged versions at timestamp ``T`` (closing the old
  version's lifetime) and releases locks; abort discards them.

Conflicts abort immediately (no waiting), the standard choice for
timestamp-ordering protocols.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from .transaction import TimestampOracle, Transaction, TransactionAborted, TxnState

#: Timestamp representing "still alive" for a version's end.
INFINITY_TS = 2**62


@dataclass
class Version:
    """One version of a tuple."""

    value: Any
    begin_ts: int
    end_ts: int = INFINITY_TS
    read_ts: int = 0
    #: Holder of the write lock while an update of this version is staged.
    locked_by: int | None = None

    def visible_to(self, timestamp: int) -> bool:
        return self.begin_ts <= timestamp < self.end_ts


class VersionChain:
    """Newest-first chain of versions for one key."""

    __slots__ = ("versions", "staged", "lock")

    def __init__(self) -> None:
        self.versions: list[Version] = []
        #: txn_id -> staged (uncommitted) value.
        self.staged: dict[int, Any] = {}
        self.lock = threading.Lock()

    @property
    def newest(self) -> Version | None:
        return self.versions[0] if self.versions else None

    def visible_version(self, timestamp: int) -> Version | None:
        for version in self.versions:
            if version.visible_to(timestamp):
                return version
        return None

    def prune(self, horizon: int) -> int:
        """Drop versions invisible to every timestamp >= ``horizon``.

        The newest version is always retained.  Returns the number of
        versions removed (garbage collection).
        """
        with self.lock:
            # Versions are newest-first: everything *after* the first
            # version visible at the horizon can never be read again.
            for index, version in enumerate(self.versions):
                if version.begin_ts <= horizon:
                    removed = len(self.versions) - index - 1
                    del self.versions[index + 1:]
                    return removed
            return 0


class MvtoStore:
    """A transactional multi-version key-value map.

    Hooks (``on_read``/``on_write``) let the storage engine charge buffer
    traffic and write log records without MVTO knowing about either.
    """

    def __init__(self, oracle: TimestampOracle | None = None) -> None:
        self.oracle = oracle or TimestampOracle()
        self._chains: dict[Any, VersionChain] = {}
        self._chains_lock = threading.Lock()
        self._active: dict[int, Transaction] = {}
        self._active_lock = threading.Lock()
        self.aborts = 0
        self.commits = 0

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------
    def begin(self) -> Transaction:
        txn = Transaction(self.oracle.next())
        with self._active_lock:
            self._active[txn.txn_id] = txn
        return txn

    def commit(self, txn: Transaction) -> None:
        txn.ensure_active()
        commit_ts = txn.timestamp
        for key in txn.write_set:
            chain = self._chain(key)
            with chain.lock:
                staged = chain.staged.pop(txn.txn_id, _MISSING)
                newest = chain.newest
                if newest is not None and newest.locked_by == txn.txn_id:
                    newest.locked_by = None
                    if staged is not _MISSING:
                        newest.end_ts = commit_ts
                if staged is not _MISSING:
                    chain.versions.insert(
                        0, Version(staged, begin_ts=commit_ts, read_ts=commit_ts)
                    )
        txn.state = TxnState.COMMITTED
        self.commits += 1
        self._retire(txn)

    def abort(self, txn: Transaction, reason: str = "user abort") -> None:
        if txn.state is TxnState.ABORTED:
            return
        txn.ensure_active()
        for key in txn.write_set:
            chain = self._chain(key)
            with chain.lock:
                chain.staged.pop(txn.txn_id, None)
                newest = chain.newest
                if newest is not None and newest.locked_by == txn.txn_id:
                    newest.locked_by = None
        txn.state = TxnState.ABORTED
        self.aborts += 1
        self._retire(txn)

    def _retire(self, txn: Transaction) -> None:
        with self._active_lock:
            self._active.pop(txn.txn_id, None)

    # ------------------------------------------------------------------
    # Reads and writes
    # ------------------------------------------------------------------
    def read(self, txn: Transaction, key: Any) -> Any:
        """MVTO read; raises KeyError for never-written keys."""
        txn.ensure_active()
        chain = self._chains.get(key)
        if chain is None:
            raise KeyError(key)
        with chain.lock:
            # A transaction sees its own staged write first.
            if txn.txn_id in chain.staged:
                return chain.staged[txn.txn_id]
            version = chain.visible_version(txn.timestamp)
            if version is None:
                raise KeyError(key)
            if version.locked_by is not None and version.locked_by != txn.txn_id:
                # The visible version is being superseded by an active
                # writer; timestamp ordering aborts the reader rather
                # than risking a non-serialisable read.
                self._abort_with(txn, "read of write-locked version")
            if txn.timestamp > version.read_ts:
                version.read_ts = txn.timestamp
        txn.read_set.add(key)
        return version.value

    def write(self, txn: Transaction, key: Any, value: Any) -> None:
        """MVTO write: stage a new version of ``key``."""
        txn.ensure_active()
        chain = self._chain(key)
        with chain.lock:
            newest = chain.newest
            if newest is not None:
                if newest.locked_by is not None and newest.locked_by != txn.txn_id:
                    self._abort_with(txn, "write-write conflict")
                if newest.read_ts > txn.timestamp:
                    # A younger transaction already read the newest
                    # version; writing under it would break ordering.
                    self._abort_with(txn, "stale write (later reader exists)")
                if newest.begin_ts > txn.timestamp:
                    self._abort_with(txn, "stale write (newer version exists)")
                newest.locked_by = txn.txn_id
            chain.staged[txn.txn_id] = value
        txn.write_set.add(key)

    def delete(self, txn: Transaction, key: Any) -> None:
        """Model deletion as writing a tombstone (None value)."""
        self.write(txn, key, None)

    def _abort_with(self, txn: Transaction, reason: str) -> None:
        # Release the chain lock context in the caller via exception; the
        # abort cleanup re-acquires chain locks one by one.
        raise _DeferredAbort(txn, reason)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _chain(self, key: Any) -> VersionChain:
        with self._chains_lock:
            chain = self._chains.get(key)
            if chain is None:
                chain = VersionChain()
                self._chains[key] = chain
            return chain

    def get_committed(self, key: Any, timestamp: int | None = None) -> Any:
        """Non-transactional snapshot read (tests, recovery checks)."""
        chain = self._chains.get(key)
        if chain is None:
            raise KeyError(key)
        ts = timestamp if timestamp is not None else self.oracle.current
        with chain.lock:
            version = chain.visible_version(ts)
        if version is None:
            raise KeyError(key)
        return version.value

    def version_count(self, key: Any) -> int:
        chain = self._chains.get(key)
        if chain is None:
            return 0
        with chain.lock:
            return len(chain.versions)

    def keys(self) -> Iterator[Any]:
        with self._chains_lock:
            return iter(list(self._chains))

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def oldest_active_timestamp(self) -> int:
        with self._active_lock:
            if not self._active:
                return self.oracle.current + 1
            return min(self._active)

    def garbage_collect(self) -> int:
        """Prune versions no active or future transaction can see."""
        horizon = self.oldest_active_timestamp()
        removed = 0
        with self._chains_lock:
            chains = list(self._chains.values())
        for chain in chains:
            removed += chain.prune(horizon)
        return removed


class _DeferredAbort(TransactionAborted):
    """Internal: raised inside a chain lock, finalised outside it."""


_MISSING = object()


def run_transaction(store: MvtoStore, body: Callable[[Transaction], Any],
                    max_retries: int = 10) -> Any:
    """Execute ``body`` transactionally, retrying on MVTO aborts.

    The standard application-level retry loop: a new transaction (and a
    new, later timestamp) is used for each attempt.
    """
    last_error: TransactionAborted | None = None
    for _ in range(max_retries):
        txn = store.begin()
        try:
            result = body(txn)
        except _DeferredAbort as abort_exc:
            store.abort(txn, abort_exc.reason)
            last_error = abort_exc
            continue
        except TransactionAborted as abort_exc:
            if txn.is_active:
                store.abort(txn, abort_exc.reason)
            last_error = abort_exc
            continue
        except Exception:
            if txn.is_active:
                store.abort(txn, "exception in transaction body")
            raise
        store.commit(txn)
        return result
    raise TransactionAborted(-1, f"gave up after {max_retries} retries: {last_error}")
